"""Shard-scaling benchmark harness.

Measures the two properties the sharded architecture exists for:

* **Serve scaling** — query throughput of the
  :class:`~repro.shard.pool.ShardServePool` as worker processes are
  added.  The workload is read-heavy (intra-tile backbone routes, the
  expensive per-query op), so throughput should scale with workers
  until the control plane saturates.
* **Boundary-only invalidation** — under gentle churn (small interior
  moves), every re-stitch must stay inside the tiles that read the
  moved node: zero cascaded tiles, and far fewer tile rebuilds than
  tiles in the deployment.

Deployments are jittered grids: deterministic for a seed, guaranteed
connected at any size (diagonal neighbors stay within the radio
radius), with uniform density — the shape both the paper's analysis
and the tiling assume.
"""

from __future__ import annotations

import random
import time
from typing import Any, Dict, Hashable, List, Sequence, Tuple

from repro.geometry.point import Point
from repro.graphs.graph import canonical_order
from repro.graphs.udg import UnitDiskGraph
from repro.shard.config import ShardConfig
from repro.shard.pool import ShardServePool

Node = Hashable

#: Grid spacing in radii: diagonal neighbors are at most
#: ``sqrt(2) * spacing * (1 + 2 * jitter)`` apart, which stays below
#: one radius for 0.55 and 10% jitter — the deployment is connected by
#: construction.
GRID_SPACING = 0.55
GRID_JITTER = 0.1


def jittered_grid(n: int, seed: int, radius: float = 1.0) -> UnitDiskGraph:
    """A connected ``n``-node deployment on a jittered square grid."""
    rng = random.Random(seed)
    cols = max(1, int(n**0.5))
    spacing = GRID_SPACING * radius
    amplitude = GRID_JITTER * spacing
    positions = {}
    for i in range(n):
        row, col = divmod(i, cols)
        positions[i] = Point(
            col * spacing + rng.uniform(-amplitude, amplitude),
            row * spacing + rng.uniform(-amplitude, amplitude),
        )
    return UnitDiskGraph(positions, radius=radius, method="vector")


def _route_workload(
    pool: ShardServePool, seed: int, count: int
) -> List[Tuple[str, Node, Node]]:
    """Intra-tile route queries: pairs of members of the same tile."""
    rng = random.Random(seed)
    tiles = pool.tiler.tiles()
    queries: List[Tuple[str, Node, Node]] = []
    for _ in range(count):
        tile = tiles[rng.randrange(len(tiles))]
        owned = pool.tiler.owned(tile)
        u = owned[rng.randrange(len(owned))]
        v = owned[rng.randrange(len(owned))]
        queries.append(("route", u, v))
    return queries


def _edge_preserving(
    graph: UnitDiskGraph, node: Node, target: Point, amplitude: float
) -> bool:
    """True when moving ``node`` to ``target`` flips no unit-disk edge.

    Only nodes within ``radius + amplitude`` of the current position
    can cross the threshold, so the check is O(local density).
    """
    pos = graph.positions[node]
    for w in graph.nodes_within(pos, graph.radius + 2.0 * amplitude):
        if w == node:
            continue
        other = graph.positions[w]
        before = pos.distance_to(other) <= graph.radius
        after = target.distance_to(other) <= graph.radius
        if before != after:
            return False
    return True


def _interior_moves(
    pool: ShardServePool, seed: int, count: int, radius: float
) -> List[Tuple[Node, Point]]:
    """Gentle churn: small edge-preserving displacements of
    tile-interior nodes (at least one halo width away from every tile
    boundary).

    Gentle means topologically silent — the common case for mobile
    nodes between connectivity events.  Such moves must stay inside
    the tiles that read the moved node; any larger blast radius is an
    invalidation bug, which is exactly what the benchmark gates on.
    Moves that do flip edges may legitimately ripple further (the
    stitched result must track the global construction), so they are
    excluded here and exercised by the correctness tests instead.
    """
    rng = random.Random(seed)
    tiler = pool.tiler
    moves: List[Tuple[Node, Point]] = []
    candidates: List[Node] = []
    for tile in tiler.tiles():
        candidates.extend(
            node
            for node in tiler.interior(tile)
            if not tiler.consumers(node)
        )
    if not candidates:
        # Tiles narrower than two halo widths have no interior band;
        # fall back to nodes read only by their owner, whose moves are
        # single-tile events just the same.
        candidates = [
            node
            for node in canonical_order(pool.graph.positions)
            if not tiler.consumers(node)
        ]
    if not candidates:
        return moves
    amplitude = 0.05 * radius
    attempts = 0
    limit = count * 50
    while len(moves) < count and attempts < limit:
        attempts += 1
        node = candidates[rng.randrange(len(candidates))]
        pos = pool.graph.positions[node]
        target = Point(
            pos.x + rng.uniform(-amplitude, amplitude),
            pos.y + rng.uniform(-amplitude, amplitude),
        )
        if _edge_preserving(pool.graph, node, target, amplitude):
            moves.append((node, target))
    return moves


def bench_pool(
    graph: UnitDiskGraph,
    workers: int,
    *,
    tile_size: float = 8.0,
    queries: int = 2000,
    batch_size: int = 256,
    seed: int = 0,
    clock=time.perf_counter,
) -> Dict[str, Any]:
    """Throughput of one pool configuration on the route workload."""
    config = ShardConfig(
        tile_size=tile_size, workers=workers, batch_size=batch_size
    )
    build_started = clock()
    with ShardServePool(graph, config) as pool:
        build_seconds = clock() - build_started
        tiles = len(pool.tiler.tiles())
        workload = _route_workload(pool, seed, queries)
        started = clock()
        results = pool.query_batch(workload)
        serve_seconds = clock() - started
        answered = sum(1 for r in results if r is not None)
    return {
        "workers": workers,
        "tiles": tiles,
        "queries": queries,
        "answered": answered,
        "build_seconds": build_seconds,
        "serve_seconds": serve_seconds,
        "throughput_qps": queries / serve_seconds if serve_seconds else 0.0,
    }


def bench_invalidation(
    graph: UnitDiskGraph,
    *,
    tile_size: float = 8.0,
    churn_events: int = 50,
    seed: int = 0,
) -> Dict[str, Any]:
    """Boundary-only invalidation under gentle interior churn."""
    config = ShardConfig(tile_size=tile_size, workers=0)
    with ShardServePool(graph, config) as pool:
        tiles_total = len(pool.tiler.tiles())
        moves = _interior_moves(pool, seed, churn_events, graph.radius)
        rebuilt = 0
        cascaded = 0
        max_rebuilt = 0
        applied = 0
        amplitude = 0.05 * graph.radius
        for node, target in moves:
            # Earlier moves shift neighbors, so re-check edge
            # preservation against the live graph before applying.
            if not _edge_preserving(pool.graph, node, target, amplitude):
                continue
            report = pool.move(node, target)
            applied += 1
            rebuilt += len(report.rebuilt)
            cascaded += len(report.cascaded)
            max_rebuilt = max(max_rebuilt, len(report.rebuilt))
    return {
        "tiles": tiles_total,
        "churn_events": applied,
        "tiles_rebuilt": rebuilt,
        "tiles_cascaded": cascaded,
        "max_tiles_rebuilt_per_event": max_rebuilt,
        "boundary_only": cascaded == 0,
    }


def bench_global_baseline(
    graph: UnitDiskGraph,
    *,
    queries: int = 200,
    churn_events: int = 5,
    seed: int = 0,
    clock=time.perf_counter,
) -> Dict[str, Any]:
    """The status-quo comparison: one global single-process
    :class:`~repro.service.service.BackboneService` absorbing the same
    kind of workload (each churn event forces a global snapshot
    refresh before the next query answers fresh)."""
    from repro.service.config import ServiceConfig
    from repro.service.service import BackboneService

    rng = random.Random(seed)
    nodes = sorted(graph.positions)
    service = BackboneService(graph.copy(), ServiceConfig())
    started = clock()
    served = 0
    for event in range(max(1, churn_events)):
        node = nodes[rng.randrange(len(nodes))]
        pos = service.graph.positions[node]
        service.move(node, pos.x + 0.05, pos.y + 0.05)
        for _ in range(max(1, queries // max(1, churn_events))):
            u = nodes[rng.randrange(len(nodes))]
            v = nodes[rng.randrange(len(nodes))]
            response = service.route(u, v)
            served += 1 if response.ok else 0
    elapsed = clock() - started
    total = max(1, churn_events) * max(1, queries // max(1, churn_events))
    return {
        "queries": total,
        "served_ok": served,
        "seconds": elapsed,
        "throughput_qps": total / elapsed if elapsed else 0.0,
    }


def run_scaling_bench(
    n: int,
    *,
    workers: Sequence[int] = (1, 2),
    tile_size: float = 8.0,
    queries: int = 2000,
    churn_events: int = 50,
    seed: int = 0,
    baseline: bool = False,
) -> Dict[str, Any]:
    """The full shard-scaling benchmark: build one deployment, measure
    every pool width, the invalidation profile, and (optionally) the
    global single-process baseline."""
    graph = jittered_grid(n, seed)
    report: Dict[str, Any] = {
        "n": n,
        "edges": graph.num_edges,
        "tile_size": tile_size,
        "pools": [],
    }
    for width in workers:
        report["pools"].append(
            bench_pool(
                graph,
                width,
                tile_size=tile_size,
                queries=queries,
                seed=seed,
            )
        )
    report["invalidation"] = bench_invalidation(
        graph, tile_size=tile_size, churn_events=churn_events, seed=seed
    )
    by_width = {entry["workers"]: entry for entry in report["pools"]}
    if 1 in by_width and 2 in by_width and by_width[1]["throughput_qps"]:
        report["scaling_2_vs_1"] = (
            by_width[2]["throughput_qps"] / by_width[1]["throughput_qps"]
        )
    if baseline:
        report["global_baseline"] = bench_global_baseline(
            graph, queries=min(queries, 200), seed=seed
        )
        if report["global_baseline"]["throughput_qps"]:
            best = max(e["throughput_qps"] for e in report["pools"])
            report["speedup_vs_global"] = (
                best / report["global_baseline"]["throughput_qps"]
            )
    return report
