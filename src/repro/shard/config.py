"""Tunables of the sharded backbone.

One frozen dataclass describes the whole sharding geometry and the
serving topology: how big a tile is, how wide the halo each tile reads
(and the frontier band it publishes) is, and how many worker processes
the serve pool spreads the tiles over.

All lengths are expressed in units of the radio radius, mirroring the
paper: Algorithm II's decisions are ≤2-hop local and its connectors
span ≤3 hops, so a halo of ``3`` radii is exactly what makes a tile's
local computation agree with the global construction (see
``docs/SHARDING.md`` for the argument).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Connector selection inspects 3-hop neighborhoods (a pair of
#: MIS-dominators at hop distance 3 plus the intermediate path), so a
#: tile must read at least this many radii beyond its own rectangle to
#: reproduce the global choice for the pairs it owns.
MIN_HALO_RADII = 3.0


@dataclass(frozen=True)
class ShardConfig:
    """Configuration of the spatial sharding and its serve pool.

    Attributes:
        tile_size: tile side length in radio radii.  Smaller tiles mean
            more parallelism and cheaper invalidation but relatively
            larger halos; below ``2 * halo`` every owned node is also a
            frontier node.
        halo: width of the halo band each tile reads (and of the
            frontier band it publishes), in radio radii.  Must be at
            least :data:`MIN_HALO_RADII` so the per-tile construction
            is exact on everything the tile owns.
        workers: serve-pool worker processes.  ``0`` keeps every tile
            replica in-process (deterministic, no multiprocessing) —
            the mode tests and the stitching oracle use.
        batch_size: query batch size the pool dispatches to a worker in
            one message; batching amortizes the IPC cost.
        method: tiling engine — ``"pure"`` (python loops),
            ``"vector"`` (:mod:`repro.kernels.shard`), or ``"auto"``.
            Both produce identical tile assignments.
    """

    tile_size: float = 8.0
    halo: float = MIN_HALO_RADII
    workers: int = 0
    batch_size: int = 256
    method: str = "auto"

    def __post_init__(self) -> None:
        if self.tile_size <= 0:
            raise ValueError("tile_size must be positive (radii)")
        if self.halo < MIN_HALO_RADII:
            raise ValueError(
                f"halo must be >= {MIN_HALO_RADII} radii: connector "
                "selection reads 3-hop neighborhoods, a thinner halo "
                "breaks the tile-interior oracle guarantee"
            )
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if self.method not in ("pure", "vector", "auto"):
            raise ValueError(
                f"unknown tiling method {self.method!r} "
                "(expected 'pure', 'vector', or 'auto')"
            )
