"""Spatially-tiled backbone sharding with frontier stitching.

The paper's locality results are what make sharding sound: Algorithm
II's decisions are ≤2-hop local, its connectors span ≤3 hops, and
Lemma 2 bounds the MIS-dominators a boundary can expose.  This
subpackage operationalizes that:

* :class:`~repro.shard.tiler.Tiler` — cut the plane into tiles with a
  3-radius halo and frontier band;
* :class:`~repro.shard.stitch.ShardedBackbone` /
  :func:`~repro.shard.stitch.build_sharded` — per-tile Algorithm II
  stitched by frontier-pin exchange, bit-identical to the global
  construction, with boundary-only invalidation under churn;
* :class:`~repro.shard.pool.ShardServePool` — serve the stitched
  backbone from per-tile replicas, in-process or across a
  ``spawn`` worker pool over shared-memory positions;
* :mod:`~repro.shard.bench` — the scaling harness behind
  ``benchmarks/bench_shard_scaling.py`` and ``repro shard-bench``.
"""

from repro.shard.config import MIN_HALO_RADII, ShardConfig
from repro.shard.pool import SharedPositions, ShardServePool
from repro.shard.stitch import (
    ALGORITHM_NAME,
    InvalidationReport,
    ShardedBackbone,
    build_sharded,
)
from repro.shard.tiler import TileId, Tiler

__all__ = [
    "ALGORITHM_NAME",
    "MIN_HALO_RADII",
    "InvalidationReport",
    "ShardConfig",
    "ShardServePool",
    "ShardedBackbone",
    "SharedPositions",
    "TileId",
    "Tiler",
    "build_sharded",
]
