"""Per-tile Algorithm II with frontier stitching.

Each tile computes Algorithm II on the subgraph induced by its members
(owned + halo) and the tiles exchange only *frontier pins* — the
determined MIS statuses of owned nodes in the boundary band — until
every owned status is settled.  The protocol:

* **Local pass.**  Walk the tile's members in rank order (Algorithm
  II's bare-id ranking).  A node pinned by its owner keeps the pinned
  status.  Otherwise it is OUT if some lower-rank neighbor is known IN;
  IN if its whole unit disk is visible to the tile (so the tile sees
  *every* neighbor) and all lower-rank neighbors are known OUT; and
  UNKNOWN when a lower-rank neighbor is still unsettled.

* **Exchange.**  After a pass, every owned node with a determined
  status is published to the tiles consuming it in their halo.  A tile
  whose pins changed is re-passed.  Determined statuses are exact
  (induction over rank: OUT needs an exact IN witness, IN needs full
  visibility plus exact OUT witnesses), so the fixpoint equals the
  global lexicographically-first MIS — dependency chains that cross
  tiles simply take one exchange round per boundary they cross.

* **Connectors.**  Once statuses are settled, each tile selects
  Algorithm II's additional dominators for the 3-hop MIS pairs *led*
  by its owned nodes (the lower endpoint), with the oracle's exact
  tie-breaking (minimum-id first-hop intermediate).  With a halo of at
  least 3 radii every node and edge relevant to an owned pair is a
  member, so the per-tile choice is bit-identical to the global one.

Churn re-runs this machinery on the affected tiles only: the tiles
that read the moved node (owner + halo consumers, old and new
position) are re-passed, and the wave cascades further only when a
published frontier status actually changed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.geometry.point import Point
from repro.graphs.graph import Graph, canonical_order
from repro.graphs.traversal import bfs_distances, is_connected
from repro.graphs.udg import UnitDiskGraph
from repro.obs.tracing import get_tracer
from repro.shard.config import ShardConfig
from repro.shard.tiler import TileId, Tiler
from repro.wcds.base import BackboneResult

Node = Hashable

#: Registry name of the sharded construction.
ALGORITHM_NAME = "wcds-sharded"


@dataclass(frozen=True)
class InvalidationReport:
    """What one churn event invalidated and rebuilt.

    ``seed_tiles`` are the tiles that read the churned node (owner plus
    halo consumers, at the old and new position) — the boundary-only
    invalidation set.  ``rebuilt`` is every tile actually re-passed;
    ``cascaded`` is the part of ``rebuilt`` beyond the seeds, reached
    only because a published frontier status changed.  Gentle interior
    churn keeps ``cascaded`` empty — the benchmark gate asserts it.
    """

    node: Node
    event: str
    seed_tiles: Tuple[TileId, ...]
    rebuilt: Tuple[TileId, ...]
    cascaded: Tuple[TileId, ...]
    rounds: int


class ShardedBackbone:
    """The stitched, incrementally-maintained sharded backbone.

    Construction stitches the full tiling; afterwards
    :meth:`apply_move` / :meth:`apply_join` / :meth:`apply_leave` (or
    the ``note_*`` twins when the caller already mutated the graph)
    keep the backbone exact under churn by re-stitching only the
    affected tiles.
    """

    def __init__(
        self,
        graph: UnitDiskGraph,
        config: Optional[ShardConfig] = None,
        *,
        registry=None,
        tracer=None,
    ) -> None:
        if graph.num_nodes == 0:
            raise ValueError("Algorithm II requires a non-empty graph")
        if not is_connected(graph):
            raise ValueError("Algorithm II requires a connected graph")
        self.graph = graph
        self.config = config or ShardConfig()
        self.registry = registry
        self.tracer = tracer if tracer is not None else get_tracer()
        self.tiler = Tiler(graph.positions, graph.radius, self.config)
        #: Per-tile pinned statuses: node -> True (MIS) / False, as
        #: published by the node's owner tile.
        self._pins: Dict[TileId, Dict[Node, bool]] = {}
        #: Per-tile member statuses from the last local pass
        #: (True = MIS, False = out, None = unsettled mid-stitch).
        self._status: Dict[TileId, Dict[Node, Optional[bool]]] = {}
        #: Per-tile connector selections ``(u, w, chosen)`` for the
        #: 3-hop pairs led by the tile's owned MIS nodes.
        self._connectors: Dict[TileId, List[Tuple[Node, Node, Node]]] = {}
        self._subgraphs: Dict[TileId, Graph] = {}
        self.last_rounds = 0
        with self.tracer.span(
            "shard_build", n=graph.num_nodes, tiles=len(self.tiler.tiles())
        ) as span:
            touched, rounds = self._stitch(set(self.tiler.tiles()), "full")
            span.set_attr("rounds", rounds)
        if self.registry is not None:
            for tile in self.tiler.tiles():
                self.registry.histogram(
                    "shard_frontier_dominators",
                    "MIS dominators in one tile's frontier band",
                ).observe(
                    sum(
                        1
                        for v in self.tiler.frontier(tile)
                        if self._status[tile].get(v) is True
                    )
                )

    # ------------------------------------------------------------------
    # Stitching
    # ------------------------------------------------------------------
    def _tile_subgraph(self, tile: TileId) -> Graph:
        cached = self._subgraphs.get(tile)
        if cached is None:
            cached = self.graph.subgraph(self.tiler.members(tile))
            self._subgraphs[tile] = cached
        return cached

    def _local_pass(self, tile: TileId) -> Dict[Node, Optional[bool]]:
        """One rank-ordered marking pass over the tile's members."""
        sub = self._tile_subgraph(tile)
        pinned = self._pins.get(tile, {})
        visible = self.tiler.visible_members(tile)
        status: Dict[Node, Optional[bool]] = {}
        for v in canonical_order(sub.nodes()):
            if v in pinned:
                status[v] = pinned[v]
                continue
            settled_in = False
            unsettled = False
            for u in sub.adjacency(v):
                if not u < v:
                    continue
                verdict = status[u]
                if verdict is True:
                    settled_in = True
                elif verdict is None:
                    unsettled = True
            if settled_in:
                status[v] = False
            elif unsettled or v not in visible:
                status[v] = None
            else:
                status[v] = True
        return status

    def _publish(self, tile: TileId) -> Set[TileId]:
        """Push determined owned statuses to consumer tiles; returns
        the consumers whose pins changed."""
        status = self._status[tile]
        dirty: Set[TileId] = set()
        published = 0
        for v in self.tiler.owned(tile):
            verdict = status.get(v)
            if verdict is None:
                continue
            for consumer in self.tiler.consumers(v):
                pins = self._pins.setdefault(consumer, {})
                if pins.get(v) is not verdict:
                    pins[v] = verdict
                    published += 1
                    dirty.add(consumer)
        if self.registry is not None and published:
            self.registry.counter(
                "shard_pins_published_total",
                "Frontier statuses published to consumer tiles",
            ).inc(published)
        return dirty

    def _drop_stale_pins(self, pending: Set[TileId]) -> None:
        """Remove pins that may no longer be exact: pins owned by a
        tile that is itself being re-stitched, and pins of nodes that
        left the deployment.  Pins from converged tiles stay — they are
        exact and give the re-stitch its boundary conditions."""
        for tile in pending:
            pins = self._pins.get(tile)
            if not pins:
                continue
            stale = [
                v
                for v in pins
                if self.tiler.owner.get(v) is None
                or self.tiler.owner[v] in pending
            ]
            for v in stale:
                del pins[v]

    def _stitch(
        self, pending: Set[TileId], phase: str
    ) -> Tuple[Set[TileId], int]:
        """Run local passes over ``pending`` tiles, exchanging frontier
        pins, until every owned status is determined.  Returns the set
        of tiles re-passed and the number of exchange rounds."""
        live = set(self.tiler.tiles())
        for tile in [t for t in self._status if t not in live]:
            self._status.pop(tile, None)
            self._connectors.pop(tile, None)
            self._pins.pop(tile, None)
            self._subgraphs.pop(tile, None)
        pending = {tile for tile in pending if tile in live}
        for tile in pending:
            self._subgraphs.pop(tile, None)
        self._drop_stale_pins(pending)
        touched: Set[TileId] = set()
        rounds = 0
        passes = 0
        # The within-round tile visit order is internally arbitrary (the
        # fixpoint is order-independent by rank induction); under an
        # active race-detector perturbation we shuffle it so that claim
        # is machine-checked, not just asserted.
        from repro.sim.engine import active_perturbation_seed

        exchange_seed = active_perturbation_seed()
        exchange_rng = (
            random.Random(exchange_seed) if exchange_seed is not None else None
        )
        # Each exchange round settles at least the globally minimum-rank
        # unsettled node, so n + 1 rounds always suffice; exceeding the
        # bound means a bug, not a slow instance.
        max_rounds = self.graph.num_nodes + 2
        while pending:
            rounds += 1
            if rounds > max_rounds:
                raise RuntimeError(
                    "frontier stitching did not converge "
                    f"(tiles still unsettled: {sorted(pending)})"
                )
            dirty: Set[TileId] = set()
            order = sorted(pending)
            if exchange_rng is not None:
                exchange_rng.shuffle(order)
            for tile in order:
                self._status[tile] = self._local_pass(tile)
                touched.add(tile)
                passes += 1
                dirty |= self._publish(tile)
            unsettled = {
                tile
                for tile in touched
                if any(
                    self._status[tile].get(v) is None
                    for v in self.tiler.owned(tile)
                )
            }
            pending = {tile for tile in dirty | unsettled if tile in live}
        for tile in sorted(touched):
            self._connectors[tile] = self._tile_connectors(tile)
        self.last_rounds = rounds
        if self.registry is not None:
            self.registry.counter(
                "shard_tile_builds_total",
                "Per-tile local backbone passes",
                phase=phase,
            ).inc(passes)
            self.registry.counter(
                "shard_stitch_rounds_total",
                "Frontier exchange rounds",
                phase=phase,
            ).inc(rounds)
            self.registry.gauge(
                "shard_tiles", "Occupied tiles in the sharded backbone"
            ).set(len(live))
        return touched, rounds

    def _tile_connectors(self, tile: TileId) -> List[Tuple[Node, Node, Node]]:
        """Algorithm II connector selection for pairs led by owned MIS
        nodes — the oracle's exact rule on the tile subgraph (exact by
        the ≥3-radii halo)."""
        sub = self._tile_subgraph(tile)
        status = self._status[tile]
        mis_members = [v for v in canonical_order(sub.nodes()) if status.get(v) is True]
        owned = set(self.tiler.owned(tile))
        chosen_pairs: List[Tuple[Node, Node, Node]] = []
        for u in mis_members:
            if u not in owned:
                continue
            dist_from_u = bfs_distances(sub, u, cutoff=3)
            targets = [
                w for w in mis_members if w > u and dist_from_u.get(w) == 3
            ]
            for w in targets:
                dist_from_w = bfs_distances(sub, w, cutoff=2)
                candidates = [
                    v for v in sub.adjacency(u) if dist_from_w.get(v) == 2
                ]
                if not candidates:  # pragma: no cover - impossible at dist 3
                    raise RuntimeError("no intermediate on a 3-hop path")
                chosen_pairs.append((u, w, min(candidates)))
        return chosen_pairs

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result(self) -> BackboneResult:
        """The stitched backbone as a standard :class:`BackboneResult`.

        Bit-identical to ``algorithm2_centralized`` on the same graph:
        same MIS, same connector choices, tile by tile.
        """
        mis: Set[Node] = set()
        additional: Set[Node] = set()
        pairs: List[Tuple[Node, Node, Node]] = []
        for tile in self.tiler.tiles():
            status = self._status[tile]
            for v in self.tiler.owned(tile):
                if status.get(v) is True:
                    mis.add(v)
            pairs.extend(self._connectors.get(tile, ()))
        for _, _, chosen in pairs:
            additional.add(chosen)
        additional -= mis
        return BackboneResult(
            dominators=frozenset(mis | additional),
            mis_dominators=frozenset(mis),
            additional_dominators=frozenset(additional),
            algorithm=ALGORITHM_NAME,
            meta={
                "tiles": len(self.tiler.tiles()),
                "stitch_rounds": self.last_rounds,
                "pairs_covered": sorted(pairs),
            },
        )

    def tile_status(self, tile: TileId) -> Dict[Node, Optional[bool]]:
        """The tile's member statuses (read-only copy)."""
        return dict(self._status.get(tile, {}))

    def tile_connectors(self, tile: TileId) -> List[Tuple[Node, Node, Node]]:
        """The tile's connector picks ``(u, w, chosen)`` (copy)."""
        return list(self._connectors.get(tile, ()))

    def tile_backbone(self, tile: TileId) -> Set[Node]:
        """Backbone members visible to one tile (for its replica)."""
        status = self._status.get(tile, {})
        members = {v for v, s in status.items() if s is True}
        for u, w, chosen in self._connectors.get(tile, ()):
            members.add(chosen)
        # Connectors chosen by *other* tiles for pairs whose nodes this
        # tile can see are collected by the serving layer from the
        # merged result; the per-tile view only needs its own picks.
        return members

    # ------------------------------------------------------------------
    # Churn
    # ------------------------------------------------------------------
    def apply_move(self, node: Node, new_position: Point) -> InvalidationReport:
        """Move a node (mutating the graph) and re-stitch locally."""
        self.graph.move_node(node, new_position)
        return self.note_moved(node)

    def apply_join(self, node: Node, position: Point) -> InvalidationReport:
        """Add a node (mutating the graph) and re-stitch locally."""
        self.graph.add_node_at(node, position)
        return self.note_joined(node)

    def apply_leave(self, node: Node) -> InvalidationReport:
        """Remove a node (mutating the graph) and re-stitch locally."""
        seeds = self.tiler.tiles_reading(node)
        self.graph.remove_node(node)
        return self._after_churn(node, "leave", seeds, self.tiler.on_node_removed(node))

    def note_moved(self, node: Node) -> InvalidationReport:
        """Re-stitch after the caller already moved ``node`` in the
        graph (the tiler still holds the old indexing)."""
        seeds = set(self.tiler.tiles_reading(node))
        affected = self.tiler.on_node_moved(node)
        seeds |= affected
        return self._after_churn(node, "move", tuple(sorted(seeds)), affected | seeds)

    def note_joined(self, node: Node) -> InvalidationReport:
        """Re-stitch after the caller already added ``node``."""
        affected = self.tiler.on_node_added(node)
        return self._after_churn(node, "join", tuple(sorted(affected)), affected)

    def note_left(self, node: Node) -> InvalidationReport:
        """Re-stitch after the caller already removed ``node``."""
        seeds = self.tiler.tiles_reading(node)
        return self._after_churn(node, "leave", seeds, self.tiler.on_node_removed(node))

    def _after_churn(
        self,
        node: Node,
        event: str,
        seeds,
        pending: Set[TileId],
    ) -> InvalidationReport:
        with self.tracer.span("shard_invalidate", event=event) as span:
            touched, rounds = self._stitch(set(pending), "churn")
            seed_tuple = tuple(sorted(set(seeds)))
            cascaded = tuple(sorted(touched - set(seed_tuple)))
            span.set_attr("seed_tiles", len(seed_tuple))
            span.set_attr("rebuilt", len(touched))
            span.set_attr("cascaded", len(cascaded))
        if self.registry is not None:
            self.registry.counter(
                "shard_invalidations_total",
                "Churn events absorbed by boundary-only re-stitching",
                event=event,
            ).inc()
            if cascaded:
                self.registry.counter(
                    "shard_cascade_tiles_total",
                    "Tiles re-stitched beyond the churn seeds",
                ).inc(len(cascaded))
        return InvalidationReport(
            node=node,
            event=event,
            seed_tiles=seed_tuple,
            rebuilt=tuple(sorted(touched)),
            cascaded=cascaded,
            rounds=rounds,
        )


def build_sharded(
    graph: UnitDiskGraph,
    config: Optional[ShardConfig] = None,
    *,
    registry=None,
    tracer=None,
) -> BackboneResult:
    """Build Algorithm II's backbone by tiling and stitching.

    A drop-in twin of ``algorithm2_centralized`` — same inputs, same
    preconditions (non-empty, connected), identical output sets — that
    computes per tile and exchanges only frontier state.
    """
    return ShardedBackbone(
        graph, config, registry=registry, tracer=tracer
    ).result()
