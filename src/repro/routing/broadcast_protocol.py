"""Backbone broadcast as an actual message protocol.

``repro.routing.broadcast`` computes broadcast outcomes analytically
(who would transmit, who would hear).  This module runs the same two
schemes on the simulator, which adds the dimensions the analytic model
cannot see: delivery *latency* under the radio model, behavior under
randomized link delays, and per-node transmission counts from the real
event order.

Forwarding rules per scheme, applied on first receipt of the packet:

* ``flood``    — every node retransmits once;
* ``backbone`` — the source and WCDS dominators retransmit; a gray node
  retransmits only while some dominator neighbor is not yet known to
  have the packet (gateway rule, same as the analytic model — here the
  knowledge is what the node has *overheard*, so an occasional extra
  gateway transmission is possible; coverage never suffers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Optional, Set, Tuple

from repro.graphs.graph import Graph
from repro.sim.config import SimConfig, coerce_sim_config
from repro.sim.batched import make_simulator
from repro.sim.messages import Message
from repro.sim.node import NodeContext, ProtocolNode
from repro.sim.stats import SimStats
from repro.wcds.base import WCDSResult

DATA = "DATA"


@dataclass(frozen=True)
class ProtocolBroadcastOutcome:
    """Measured outcome of a protocol-level broadcast."""

    transmissions: int
    covered: int
    total: int
    last_delivery_time: float

    @property
    def full_coverage(self) -> bool:
        """Every node received the packet."""
        return self.covered == self.total


class BroadcastNode(ProtocolNode):
    """One node of the dissemination protocol."""

    def __init__(
        self,
        ctx: NodeContext,
        source: Hashable,
        forwarders: Optional[FrozenSet[Hashable]],
    ) -> None:
        super().__init__(ctx)
        self.source = source
        self.forwarders = forwarders  # None = flood (everyone forwards)
        self.received_at: Optional[float] = None
        self.transmitted = False
        self._neighbors_with_packet: Set[Hashable] = set()

    def on_start(self) -> None:
        if self.node_id == self.source:
            self.received_at = self.ctx.now
            self._transmit()

    def on_message(self, msg: Message) -> None:
        if msg.kind != DATA:
            return
        self._neighbors_with_packet.add(msg.sender)
        if self.received_at is None:
            self.received_at = self.ctx.now
            if self._should_forward():
                self._transmit()

    def _should_forward(self) -> bool:
        if self.forwarders is None or self.node_id in self.forwarders:
            return True
        # Gateway rule: forward if a dominator neighbor has not been
        # overheard with the packet yet.
        return any(
            nbr in self.forwarders and nbr not in self._neighbors_with_packet
            for nbr in self.ctx.neighbors
        )

    def _transmit(self) -> None:
        if not self.transmitted:
            self.transmitted = True
            self.ctx.broadcast(DATA)

    def result(self) -> Dict[str, object]:
        return {
            "received_at": self.received_at,
            "transmitted": self.transmitted,
        }


def _run(
    graph: Graph,
    source: Hashable,
    forwarders: Optional[FrozenSet[Hashable]],
    config: SimConfig,
) -> Tuple[ProtocolBroadcastOutcome, SimStats]:
    simulator = make_simulator(
        graph,
        lambda ctx: BroadcastNode(ctx, source, forwarders),
        config,
    )
    stats = simulator.run()
    results = simulator.collect_results()
    received = [res["received_at"] for res in results.values() if res["received_at"] is not None]
    outcome = ProtocolBroadcastOutcome(
        transmissions=sum(1 for res in results.values() if res["transmitted"]),
        covered=len(received),
        total=graph.num_nodes,
        last_delivery_time=max(received) if received else 0.0,
    )
    return outcome, stats


def flood_protocol(
    graph: Graph,
    source: Hashable,
    *,
    sim: Optional[SimConfig] = None,
    **legacy,
) -> Tuple[ProtocolBroadcastOutcome, SimStats]:
    """Run blind flooding on the simulator."""
    config = coerce_sim_config(sim, legacy, "flood_protocol")
    return _run(graph, source, None, config)


def backbone_protocol(
    graph: Graph,
    result: WCDSResult,
    source: Hashable,
    *,
    sim: Optional[SimConfig] = None,
    **legacy,
) -> Tuple[ProtocolBroadcastOutcome, SimStats]:
    """Run WCDS-backbone dissemination on the simulator."""
    config = coerce_sim_config(sim, legacy, "backbone_protocol")
    return _run(graph, source, frozenset(result.dominators), config)
