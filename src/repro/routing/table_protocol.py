"""Distributed construction of the clusterhead routing tables.

Section 4.2 states that MIS-dominators (clusterheads) "maintain the
routing tables" over the dominator overlay; this module supplies the
missing mechanism as a standard link-state protocol run over the same
simulator as the WCDS construction:

1. every MIS-dominator assembles its overlay adjacency from the
   2HopDomList (cost-2 links) and 3HopDomList (cost-3 links) Algorithm
   II already built, and floods it as an LSA;
2. every node — gray relays included — rebroadcasts each LSA once
   (scoped flooding: n transmissions per LSA, n·|S| total);
3. at quiescence each dominator holds the complete overlay map and
   runs Dijkstra locally to fill its next-clusterhead table.

The tables are checked against the centralized
:class:`~repro.routing.clusterhead.ClusterheadRouter` overlay: the
distributed distances must match exactly (next hops may differ only
between equal-cost ties).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Hashable, Optional, Set, Tuple

from repro.graphs.graph import Graph, canonical_order
from repro.sim.batched import make_simulator
from repro.sim.config import SimConfig, coerce_sim_config
from repro.sim.messages import Message
from repro.sim.node import NodeContext, ProtocolNode
from repro.sim.stats import SimStats
from repro.wcds.base import WCDSResult

LSA = "LSA"

OverlayLinks = Tuple[Tuple[Hashable, int], ...]
RoutingTable = Dict[Hashable, Tuple[Optional[Hashable], int]]


class LinkStateNode(ProtocolNode):
    """Floods dominator LSAs; dominators also collect them."""

    def __init__(
        self,
        ctx: NodeContext,
        is_dominator: bool,
        overlay_links: OverlayLinks,
    ) -> None:
        super().__init__(ctx)
        self.is_dominator = is_dominator
        self.overlay_links = overlay_links
        self.database: Dict[Hashable, OverlayLinks] = {}
        self._seen: Set[Hashable] = set()

    def on_start(self) -> None:
        if self.is_dominator:
            self._accept(self.node_id, self.overlay_links)
            self.ctx.broadcast(LSA, origin=self.node_id, links=self.overlay_links)
            self._seen.add(self.node_id)

    def on_message(self, msg: Message) -> None:
        if msg.kind != LSA:
            return
        origin = msg["origin"]
        if origin in self._seen:
            return
        self._seen.add(origin)
        self._accept(origin, msg["links"])
        self.ctx.broadcast(LSA, origin=origin, links=msg["links"])

    def _accept(self, origin: Hashable, links: OverlayLinks) -> None:
        if self.is_dominator:
            self.database[origin] = links

    def result(self) -> Dict[str, object]:
        if not self.is_dominator:
            return {"table": None}
        return {"table": _dijkstra_table(self.node_id, self.database)}


def _dijkstra_table(
    source: Hashable, database: Dict[Hashable, OverlayLinks]
) -> RoutingTable:
    """Next-clusterhead and distance to every known dominator.

    The overlay is treated as undirected: a link is usable if either
    endpoint advertised it (the relay-learned direction may be missing
    from one side's lists).
    """
    adjacency: Dict[Hashable, Dict[Hashable, int]] = {d: {} for d in database}
    for origin, links in database.items():
        for target, cost in links:
            if target not in adjacency:
                adjacency[target] = {}
            best = min(cost, adjacency[origin].get(target, cost))
            adjacency[origin][target] = best
            adjacency[target][origin] = best
    table: RoutingTable = {}
    counter = itertools.count()
    heap = [(0, next(counter), source, None)]
    done: Set[Hashable] = set()
    while heap:
        dist, _, node, first_hop = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        if node != source:
            table[node] = (first_hop, dist)
        # Ties pop in push order: iterate links canonically so tied
        # next hops match the centralized router's choice.
        links = adjacency.get(node, {})
        for nbr in canonical_order(links):
            if nbr not in done:
                cost = links[nbr]
                heapq.heappush(
                    heap,
                    (
                        dist + cost,
                        next(counter),
                        nbr,
                        nbr if node == source else first_hop,
                    ),
                )
    return table


def build_routing_tables(
    graph: Graph,
    result: WCDSResult,
    *,
    sim: Optional[SimConfig] = None,
    **legacy,
) -> Tuple[Dict[Hashable, RoutingTable], SimStats]:
    """Run the link-state protocol; returns per-dominator tables.

    Requires a result carrying Algorithm II's per-node state (a
    distributed run); for a centralized result, synthesize the lists by
    constructing a :class:`ClusterheadRouter` instead.
    """
    node_state = result.meta.get("node_state")
    if node_state is None:
        raise ValueError(
            "build_routing_tables needs meta['node_state'] from "
            "algorithm2_distributed"
        )
    config = coerce_sim_config(sim, legacy, "build_routing_tables")
    mis = set(result.mis_dominators)

    def links_of(node: Hashable) -> OverlayLinks:
        state = node_state[node]
        links = [(w, 2) for w in state["two_hop_dom"]]
        links.extend((w, 3) for w in state["three_hop_dom"])
        return tuple(sorted(links, key=repr))

    simulator = make_simulator(
        graph,
        lambda ctx: LinkStateNode(
            ctx,
            ctx.node_id in mis,
            links_of(ctx.node_id) if ctx.node_id in mis else (),
        ),
        config,
    )
    stats = simulator.run()
    tables = {
        node: res["table"]
        for node, res in simulator.collect_results().items()
        if res["table"] is not None
    }
    return tables, stats
