"""Routing over the WCDS backbone: clusterhead unicast (Section 4.2)
and backbone broadcast."""

from repro.routing.clusterhead import (
    ClusterheadRouter,
    DominatorLists,
    spanner_route,
)
from repro.routing.broadcast import (
    BroadcastOutcome,
    backbone_broadcast,
    blind_flood,
)
from repro.routing.table_protocol import LinkStateNode, build_routing_tables
from repro.routing.broadcast_protocol import (
    ProtocolBroadcastOutcome,
    backbone_protocol,
    flood_protocol,
)

__all__ = [
    "ClusterheadRouter",
    "DominatorLists",
    "spanner_route",
    "BroadcastOutcome",
    "backbone_broadcast",
    "blind_flood",
    "LinkStateNode",
    "build_routing_tables",
    "ProtocolBroadcastOutcome",
    "backbone_protocol",
    "flood_protocol",
]
