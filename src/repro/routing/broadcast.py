"""Backbone broadcasting: the virtual-backbone motivation of Section 1.

The point of a small WCDS is that network-wide broadcast does not need
every node to retransmit.  Because the backbone is only *weakly*
connected, dominators alone cannot relay — black paths alternate
dominator / gray, so the gray *gateway* between two dominators must
forward too.  The backbone scheme here retransmits at the source, at
every dominator, and at a gray node only when it still has an unserved
dominator neighbor (on-demand gateway forwarding); coverage is
guaranteed by the WCDS properties and checked explicitly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable, Set

from repro.graphs.graph import Graph, canonical_order
from repro.wcds.base import WCDSResult, weakly_induced_subgraph


@dataclass(frozen=True)
class BroadcastOutcome:
    """Result of one broadcast dissemination."""

    transmissions: int
    covered: int
    total: int

    @property
    def full_coverage(self) -> bool:
        """Every node received the packet."""
        return self.covered == self.total


def blind_flood(graph: Graph, source: Hashable) -> BroadcastOutcome:
    """Classic flooding: every node retransmits the packet once.

    Transmissions equal the number of reached nodes (each forwards on
    first receipt) — the broadcast-storm baseline.
    """
    reached: Set[Hashable] = {source}
    frontier = deque([source])
    transmissions = 0
    while frontier:
        node = frontier.popleft()
        transmissions += 1  # node forwards once
        for nbr in canonical_order(graph.adjacency(node)):
            if nbr not in reached:
                reached.add(nbr)
                frontier.append(nbr)
    return BroadcastOutcome(
        transmissions=transmissions, covered=len(reached), total=graph.num_nodes
    )


def backbone_broadcast(
    graph: Graph, result: WCDSResult, source: Hashable
) -> BroadcastOutcome:
    """Backbone flooding over the black edges.

    Forwarding rule on first receipt: the source and all dominators
    always retransmit; a gray node retransmits only if some dominator
    neighbor has not yet heard the packet (it is the gateway that
    carries the flood across a white gap between clusters).  Total
    transmissions come out near ``1 + |U| + #gateways`` — far below the
    ``n`` of blind flooding when the WCDS is small.
    """
    backbone = set(result.dominators)
    spanner = weakly_induced_subgraph(graph, backbone)
    heard: Set[Hashable] = {source}
    transmissions = 0
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        is_forwarder = (
            node == source
            or node in backbone
            or any(
                nbr in backbone and nbr not in heard
                for nbr in spanner.adjacency(node)
            )
        )
        if not is_forwarder:
            continue
        transmissions += 1
        # The gateway rule reads `heard`, so the visit order decides
        # which gray node forwards; hash order here would make the
        # transmission count depend on the interpreter's hash seed.
        for nbr in canonical_order(spanner.adjacency(node)):
            if nbr not in heard:
                heard.add(nbr)
                frontier.append(nbr)
    return BroadcastOutcome(
        transmissions=transmissions, covered=len(heard), total=graph.num_nodes
    )
