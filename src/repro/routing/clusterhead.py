"""Clusterhead unicast routing over the WCDS spanner (Section 4.2).

The paper's routing scheme: adjacent pairs talk directly; otherwise the
packet goes to the source's clusterhead (an MIS-dominator in its
1HopDomList), travels clusterhead-to-clusterhead across the dominator
overlay — each overlay hop expanded to a concrete 2-hop path (via the
2HopDomList) or 3-hop path through an additional-dominator (via the
3HopDomList) — and finally drops from the destination's clusterhead to
the destination.

Every expanded hop is a black edge, so routed paths live entirely in
the weakly induced spanner, and the stretch inherits Theorem 11's
``3·h + 2`` bound (plus the constant endpoints detour, measured by the
routing benchmark).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.graphs.graph import Graph, canonical_order
from repro.graphs.traversal import bfs_distances, shortest_path
from repro.wcds.base import WCDSResult, weakly_induced_subgraph


@dataclass(frozen=True)
class DominatorLists:
    """One node's routing state: the paper's three dominator lists."""

    one_hop: Tuple[Hashable, ...]
    two_hop: Dict[Hashable, Hashable]  # dominator -> first relay
    three_hop: Dict[Hashable, Tuple[Hashable, Hashable]]  # dominator -> (v, x)


class ClusterheadRouter:
    """Table-driven unicast routing over an Algorithm II WCDS.

    If the result came from :func:`algorithm2_distributed`, the exact
    dominator lists the protocol built are reused; for a centralized
    result equivalent lists are synthesized from the graph.
    """

    def __init__(self, graph: Graph, result: WCDSResult) -> None:
        self.graph = graph
        self.result = result
        self.mis = set(result.mis_dominators)
        self.dominators = set(result.dominators)
        self.lists = self._build_lists()
        self._overlay_next: Dict[Hashable, Dict[Hashable, Hashable]] = {}
        self._build_overlay_tables()

    # ------------------------------------------------------------------
    # Table construction
    # ------------------------------------------------------------------
    def _build_lists(self) -> Dict[Hashable, DominatorLists]:
        node_state = self.result.meta.get("node_state")
        lists: Dict[Hashable, DominatorLists] = {}
        if node_state is not None:
            for node, state in node_state.items():
                lists[node] = DominatorLists(
                    one_hop=tuple(sorted(state["one_hop_dom"], key=repr)),
                    two_hop=dict(state["two_hop_dom"]),
                    three_hop=dict(state["three_hop_dom"]),
                )
            return lists
        # Synthesize from the graph: same information the protocol
        # would have collected.
        for node in self.graph.nodes():
            one_hop = tuple(sorted(self.graph.adjacency(node) & self.mis))
            two_hop: Dict[Hashable, Hashable] = {}
            three_hop: Dict[Hashable, Tuple[Hashable, Hashable]] = {}
            if node in self.mis:
                dist = bfs_distances(self.graph, node, cutoff=3)
                for other in self.mis:
                    if other == node:
                        continue
                    if dist.get(other) == 2:
                        via = min(
                            self.graph.adjacency(node) & self.graph.adjacency(other)
                        )
                        two_hop[other] = via
                    elif dist.get(other) == 3:
                        hop = self._three_hop_path(node, other)
                        if hop is not None:
                            three_hop[other] = hop
            lists[node] = DominatorLists(one_hop, two_hop, three_hop)
        return lists

    def _three_hop_path(
        self, u: Hashable, w: Hashable
    ) -> Optional[Tuple[Hashable, Hashable]]:
        """Find ``(v, x)`` with ``u-v-x-w`` where ``v`` is a dominator,
        so both expanded edges are black."""
        dist_w = bfs_distances(self.graph, w, cutoff=2)
        candidates = []
        for v in sorted(self.graph.adjacency(u) & self.dominators):
            if dist_w.get(v) == 2:
                x = min(self.graph.adjacency(v) & self.graph.adjacency(w))
                candidates.append((v, x))
        return candidates[0] if candidates else None

    def _build_overlay_tables(self) -> None:
        """BFS next-hop tables on the dominator overlay.

        Overlay nodes are MIS-dominators; overlay edges join dominators
        with a known 2- or 3-hop realization.  Edges are weighted by
        realization hop count so routes minimize real hops.
        """
        overlay: Dict[Hashable, Dict[Hashable, int]] = {u: {} for u in self.mis}
        for u in self.mis:
            entry = self.lists[u]
            for w in entry.two_hop:
                if w in overlay:
                    overlay[u][w] = 2
                    overlay[w][u] = 2
            for w in entry.three_hop:
                if w in overlay:
                    overlay[u][w] = min(overlay[u].get(w, 3), 3)
                    overlay[w][u] = min(overlay[w].get(u, 3), 3)
        for source in self.mis:
            self._overlay_next[source] = self._dijkstra_next_hops(overlay, source)

    @staticmethod
    def _dijkstra_next_hops(
        overlay: Dict[Hashable, Dict[Hashable, int]], source: Hashable
    ) -> Dict[Hashable, Hashable]:
        dist: Dict[Hashable, int] = {}
        first_hop: Dict[Hashable, Hashable] = {}
        counter = itertools.count()
        heap = [(0, next(counter), source, source)]
        while heap:
            d, _, node, via = heapq.heappop(heap)
            if node in dist:
                continue
            dist[node] = d
            if node != source:
                first_hop[node] = via
            # Equal-cost entries pop in push order (the counter), so the
            # first hop of a tied route follows the iteration order here
            # — canonical, not dict order.
            links = overlay[node]
            for nbr in canonical_order(links):
                if nbr not in dist:
                    weight = links[nbr]
                    heapq.heappush(
                        heap,
                        (d + weight, next(counter), nbr, nbr if node == source else via),
                    )
        return first_hop

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def clusterhead_of(self, node: Hashable) -> Hashable:
        """A node's clusterhead: itself if an MIS-dominator, else the
        smallest dominator in its 1HopDomList."""
        if node in self.mis:
            return node
        one_hop = self.lists[node].one_hop
        if not one_hop:
            raise ValueError(f"node {node!r} has no dominator neighbor")
        return min(one_hop)

    def expand_overlay_hop(self, u: Hashable, w: Hashable) -> List[Hashable]:
        """The concrete node path realizing overlay edge ``u -> w``
        (excluding ``u``, including ``w``)."""
        entry = self.lists[u]
        if w in entry.two_hop:
            return [entry.two_hop[w], w]
        if w in entry.three_hop:
            v, x = entry.three_hop[w]
            return [v, x, w]
        reverse = self.lists[w]
        if u in reverse.two_hop:
            return [reverse.two_hop[u], w]
        if u in reverse.three_hop:
            # w knows the reverse entry (u, x, v): path w-x-v-u, so from
            # u the path is u-v-x-w.
            x, v = reverse.three_hop[u]
            return [v, x, w]
        raise KeyError(f"no realization for overlay edge ({u!r}, {w!r})")

    def route(self, src: Hashable, dst: Hashable) -> List[Hashable]:
        """The routed node path from ``src`` to ``dst`` (inclusive)."""
        if src == dst:
            return [src]
        if self.graph.has_edge(src, dst):
            return [src, dst]
        path = [src]
        head_src = self.clusterhead_of(src)
        head_dst = self.clusterhead_of(dst)
        if head_src != src:
            path.append(head_src)
        current = head_src
        while current != head_dst:
            nxt = self._overlay_next[current].get(head_dst)
            if nxt is None:
                raise RuntimeError(
                    f"overlay disconnects {head_src!r} from {head_dst!r}"
                )
            path.extend(self.expand_overlay_hop(current, nxt))
            current = nxt
        if dst != head_dst:
            path.append(dst)
        return _collapse_repeats(path)

    def validate_path(self, path: List[Hashable]) -> None:
        """Assert the path is walkable: every hop is a graph edge, and —
        except for the single-hop direct shortcut the paper allows
        between adjacent nodes — every hop is a black edge."""
        for a, b in zip(path, path[1:]):
            if not self.graph.has_edge(a, b):
                raise AssertionError(f"({a!r}, {b!r}) is not an edge")
        if len(path) <= 2:
            return
        for a, b in zip(path, path[1:]):
            if a not in self.dominators and b not in self.dominators:
                raise AssertionError(f"({a!r}, {b!r}) is not a black edge")


def spanner_route(
    graph: Graph, result: WCDSResult, src: Hashable, dst: Hashable
) -> Optional[List[Hashable]]:
    """Reference routing: a minimum-hop path in the weakly induced
    spanner (what the paper's "unicast routing ... will follow the
    min-hop path in the spanner G'" describes), with the direct edge
    shortcut for adjacent pairs."""
    if src == dst:
        return [src]
    if graph.has_edge(src, dst):
        return [src, dst]
    spanner = weakly_induced_subgraph(graph, result.dominators)
    return shortest_path(spanner, src, dst)


def _collapse_repeats(path: List[Hashable]) -> List[Hashable]:
    collapsed = [path[0]]
    for node in path[1:]:
        if node != collapsed[-1]:
            collapsed.append(node)
    return collapsed
