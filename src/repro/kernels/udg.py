"""Vectorized unit-disk-graph edge construction.

Same algorithm as ``UnitDiskGraph._build_edges_grid`` — hash every
point into a ``radius``-sized cell, compare only pairs in the same or
adjacent cells — but executed as array passes:

1. linearize cell coordinates into a single sortable key,
2. sort the points by key and find the cell runs,
3. for the within-cell pairs and each of the four "forward" neighbor
   offsets, materialize the candidate pairs of whole cell *blocks* with
   a ragged cartesian product (pure index arithmetic, no Python loop
   over points),
4. keep candidates with ``distance_squared <= radius**2`` — computed
   with the same float64 subtract/multiply/add sequence as
   :func:`repro.geometry.point.distance_squared`, so the kept edge set
   is bit-for-bit identical to the pure builders'.

The adjacency sets are then bulk-built from the edge arrays with one
sort instead of ``2m`` Python ``set.add`` calls.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Sequence, Set, Tuple

from repro.kernels._compat import require_numpy

Node = Hashable


def _ragged_pairs(
    np: Any, a_starts: Any, a_counts: Any, b_starts: Any, b_counts: Any
) -> Tuple[Any, Any]:
    """All index pairs of matched variable-size blocks.

    For each i, emits the cartesian product ``range(a_starts[i],
    a_starts[i]+a_counts[i]) x range(b_starts[i], ...)`` — flattened
    into two parallel index arrays without a Python loop.
    """
    sizes = a_counts * b_counts
    total = int(sizes.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    group = np.repeat(np.arange(sizes.size), sizes)
    offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    within = np.arange(total) - offsets[group]
    bc = b_counts[group]
    ai = a_starts[group] + within // bc
    bi = b_starts[group] + within % bc
    return ai, bi


def vector_udg_edges(coords: Any, radius: float) -> Any:
    """Unit-disk edges over ``coords`` (an ``(n, 2)`` float array).

    Returns an ``(m, 2)`` int64 array of index pairs ``i < j`` is *not*
    guaranteed; pairs are unordered and unique.  Exactly equal to the
    brute-force ``distance_squared(p_i, p_j) <= radius**2`` edge set.
    """
    np = require_numpy()
    pts = np.ascontiguousarray(coords, dtype=np.float64)
    n = int(pts.shape[0])
    if n < 2:
        return np.empty((0, 2), dtype=np.int64)
    cell = np.floor(pts / radius).astype(np.int64)
    cell -= cell.min(axis=0)
    # One linear key per cell; the +1 / +3 padding keeps every (dx, dy)
    # offset in {-1..1} x {-1..1} collision-free after linearization.
    stride = int(cell[:, 1].max()) + 3
    key = cell[:, 0] * stride + (cell[:, 1] + 1)
    order = np.argsort(key)
    skey = key[order]
    # Cell runs in the sorted order (replaces np.unique: skey is sorted,
    # so run boundaries are where consecutive keys differ).
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    np.not_equal(skey[1:], skey[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    counts = np.diff(np.append(starts, n))
    run_keys = skey[starts]

    limit = radius * radius
    xs = pts[order, 0]
    ys = pts[order, 1]
    out_a: List[Any] = []
    out_b: List[Any] = []

    def _keep(ai: Any, bi: Any) -> None:
        dx = xs[ai] - xs[bi]
        dy = ys[ai] - ys[bi]
        mask = dx * dx + dy * dy <= limit
        out_a.append(ai[mask])
        out_b.append(bi[mask])

    # Within-cell pairs: cartesian product of each cell with itself,
    # upper triangle only.
    ai, bi = _ragged_pairs(np, starts, counts, starts, counts)
    upper = ai < bi
    _keep(ai[upper], bi[upper])

    # Cross-cell pairs: the four forward offsets (1,-1), (1,0), (1,1),
    # (0,1) — mirroring the pure builder — so each unordered cell pair
    # is examined once.
    for delta in (stride - 1, stride, stride + 1, 1):
        target = run_keys + delta
        idx = np.searchsorted(run_keys, target)
        idx_c = np.minimum(idx, len(run_keys) - 1)
        match = run_keys[idx_c] == target
        if not match.any():
            continue
        ai, bi = _ragged_pairs(
            np,
            starts[match],
            counts[match],
            starts[idx_c[match]],
            counts[idx_c[match]],
        )
        _keep(ai, bi)

    a = np.concatenate(out_a)
    b = np.concatenate(out_b)
    return np.stack([order[a], order[b]], axis=1)


def vector_adjacency(
    positions: Sequence[Tuple[Node, Any]], radius: float
) -> Dict[Node, Set[Node]]:
    """Adjacency sets of the unit-disk graph over ``positions``.

    ``positions`` is a sequence of ``(node, point)`` pairs (any object
    exposing ``.x`` / ``.y`` or indexable as ``(x, y)``).  Returns a
    complete ``{node: set(neighbors)}`` map — isolated nodes included —
    identical to what the pure builders produce.
    """
    np = require_numpy()
    nodes: List[Node] = [node for node, _ in positions]
    n = len(nodes)
    adjacency: Dict[Node, Set[Node]] = {}
    if n == 0:
        return adjacency
    try:
        coords = np.fromiter(
            (c for _, pos in positions for c in (pos.x, pos.y)),
            dtype=np.float64,
            count=2 * n,
        ).reshape(-1, 2)
    except AttributeError:
        coords = np.empty((n, 2), dtype=np.float64)
        for i, (_, pos) in enumerate(positions):
            x, y = pos
            coords[i, 0] = x
            coords[i, 1] = y
    edges = vector_udg_edges(coords, radius)
    if len(edges) == 0:
        return {node: set() for node in nodes}
    # Bulk adjacency: sort both edge directions by a single combined
    # (head * n + tail) key — one np.sort, no permutation gather — then
    # slice each head's run out of the tail list.
    combined = np.concatenate(
        [edges[:, 0] * n + edges[:, 1], edges[:, 1] * n + edges[:, 0]]
    )
    combined = np.sort(combined)
    tails = (combined % n).tolist()
    cuts = np.searchsorted(combined, np.arange(n + 1, dtype=np.int64) * n)
    cut_list: List[int] = cuts.tolist()
    contiguous_ints = nodes == list(range(n))
    if contiguous_ints:
        # Common case (build_udg numbering): node ids are the indices.
        for i in range(n):
            adjacency[i] = set(tails[cut_list[i] : cut_list[i + 1]])
    else:
        for i, node in enumerate(nodes):
            adjacency[node] = {
                nodes[j] for j in tails[cut_list[i] : cut_list[i + 1]]
            }
    return adjacency
