"""Vectorized disk queries: which points lie within r of a center.

Used by ``UnitDiskGraph.nodes_within_many`` (batch coverage / density
probes for the mobility models) and by the measured packing extrema in
:mod:`repro.geometry.packing`.  The comparisons run the same float64
``dx*dx + dy*dy <= r*r`` as the pure scans, so the selected point sets
are exactly equal.
"""

from __future__ import annotations

from typing import Any

from repro.kernels._compat import require_numpy


def _as_coord_array(np: Any, values: Any) -> Any:
    """``(n, 2)`` float64 array from tuples, ``Point`` objects, or an
    existing array — whatever the pure scans accept, this accepts."""
    try:
        arr = np.asarray(values, dtype=np.float64)
    except (TypeError, ValueError):
        arr = np.asarray([(x, y) for x, y in values], dtype=np.float64)
    # Empty input and a single bare (x, y) both arrive 1-d.
    return arr.reshape(-1, 2) if arr.ndim != 2 else arr


def points_in_disk(coords: Any, center: Any, radius: float) -> Any:
    """Boolean mask over ``coords`` (an ``(n, 2)`` array): inside the
    closed disk of ``radius`` around ``center``."""
    np = require_numpy()
    pts = _as_coord_array(np, coords)
    cx, cy = center
    dx = pts[:, 0] - cx
    dy = pts[:, 1] - cy
    return dx * dx + dy * dy <= radius * radius


def batch_points_in_disk(coords: Any, centers: Any, radius: float) -> Any:
    """Boolean matrix ``(len(centers), len(coords))``: membership of
    every point in every query disk, in one broadcast pass."""
    np = require_numpy()
    pts = _as_coord_array(np, coords)
    ctr = _as_coord_array(np, centers)
    dx = ctr[:, 0:1] - pts[:, 0]
    dy = ctr[:, 1:2] - pts[:, 1]
    return dx * dx + dy * dy <= radius * radius


def count_points_in_disks(coords: Any, centers: Any, radius: float) -> Any:
    """Per-center occupancy counts — ``batch_points_in_disk`` summed
    over the point axis (int64 array of length ``len(centers)``)."""
    np = require_numpy()
    return np.count_nonzero(
        batch_points_in_disk(coords, centers, radius), axis=1
    )
