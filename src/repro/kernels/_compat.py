"""numpy availability gate and kernel-method resolution.

The rest of the library must keep working (and keep its exact pure
behavior) when numpy is missing, so the import is probed exactly once
here and every kernel module routes through :func:`require_numpy`.
"""

from __future__ import annotations

from typing import Any

try:  # pragma: no cover - exercised implicitly on import
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - container always ships numpy
    HAVE_NUMPY = False


class KernelUnavailableError(RuntimeError):
    """A vector kernel was requested but numpy is not importable."""


def require_numpy() -> Any:
    """Return the ``numpy`` module or raise :class:`KernelUnavailableError`."""
    if not HAVE_NUMPY:
        raise KernelUnavailableError(
            "the vector kernels need numpy; install it or use the pure "
            "implementations (method='pure'/'grid')"
        )
    import numpy

    return numpy


def resolve_method(method: str, *, size: int, threshold: int = 64) -> str:
    """Resolve a ``{"pure", "vector", "auto"}`` switch to a concrete choice.

    ``auto`` picks ``vector`` when numpy is importable and the workload
    has at least ``threshold`` elements (below that the numpy call
    overhead dominates); otherwise ``pure``.
    """
    if method == "pure" or method == "vector":
        return method
    if method != "auto":
        raise ValueError(
            f"unknown kernel method {method!r} (expected 'pure', 'vector', "
            "or 'auto')"
        )
    if HAVE_NUMPY and size >= threshold:
        return "vector"
    return "pure"
