"""Vectorized spatial tiling: cell binning and rectangle distances.

The fast path behind :class:`repro.shard.tiler.Tiler`.  Sharding a
deployment means answering two geometric questions for every node:

* which tile (axis-aligned cell of side ``tile_side``) owns it, and
* how far it is from a given tile's rectangle (to decide halo and
  frontier-band membership).

Both are answered here as single numpy passes over an ``(n, 2)``
position array.  As everywhere in :mod:`repro.kernels`, the float64
arithmetic is performed with the same operations in the same order as
the pure-Python oracle in ``repro.shard.tiler``, so the tile
assignments and band memberships are *exactly* equal — the
cross-validation tests assert set equality, never closeness.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.kernels._compat import require_numpy
from repro.kernels.disk import _as_coord_array

TileId = Tuple[int, int]


def tile_index_array(coords: Any, tile_side: float) -> Any:
    """``(n, 2)`` int64 array of tile indices: ``floor(coord / side)``.

    Matches ``int(math.floor(x / side))`` of the pure tiler bit for bit
    (same float64 division, then floor), including negative
    coordinates.
    """
    np = require_numpy()
    pts = _as_coord_array(np, coords)
    return np.floor(pts / tile_side).astype(np.int64)


def bin_by_tile(coords: Any, tile_side: float) -> Dict[TileId, Any]:
    """Group point indices by owning tile in one sorted pass.

    Returns ``{tile_id: int64 index array (ascending)}``; the union of
    the index arrays is ``0..n-1``.
    """
    np = require_numpy()
    pts = _as_coord_array(np, coords)
    bins: Dict[TileId, Any] = {}
    if pts.shape[0] == 0:
        return bins
    cells = tile_index_array(pts, tile_side)
    order = np.lexsort((cells[:, 1], cells[:, 0]))
    sorted_cells = cells[order]
    boundaries = np.nonzero(np.any(np.diff(sorted_cells, axis=0), axis=1))[0]
    starts = np.concatenate(([0], boundaries + 1))
    ends = np.concatenate((boundaries + 1, [sorted_cells.shape[0]]))
    for start, end in zip(starts.tolist(), ends.tolist()):
        tx, ty = sorted_cells[start]
        members = np.sort(order[start:end])
        bins[(int(tx), int(ty))] = members
    return bins


def rect_distance_squared(
    coords: Any, rect: Tuple[float, float, float, float]
) -> Any:
    """Squared Euclidean distance from each point to a rectangle.

    ``rect`` is ``(x0, y0, x1, y1)``; points inside get 0.  Same
    ``max(low - v, 0, v - high)`` clamping and ``dx*dx + dy*dy`` as the
    pure oracle, so thresholding at an identical bound selects the
    identical point set.
    """
    np = require_numpy()
    pts = _as_coord_array(np, coords)
    x0, y0, x1, y1 = rect
    dx = np.maximum(np.maximum(x0 - pts[:, 0], 0.0), pts[:, 0] - x1)
    dy = np.maximum(np.maximum(y0 - pts[:, 1], 0.0), pts[:, 1] - y1)
    return dx * dx + dy * dy


def boundary_band_mask(
    coords: Any,
    rect: Tuple[float, float, float, float],
    band: float,
) -> Any:
    """Boolean mask: points *inside* ``rect`` within ``band`` of its
    boundary (the frontier band a tile publishes to its neighbors).

    A point at ``(x, y)`` is in the band when its distance to the
    nearest rectangle edge — ``min(x - x0, x1 - x, y - y0, y1 - y)`` —
    is non-negative (inside) and strictly below ``band``.
    """
    np = require_numpy()
    pts = _as_coord_array(np, coords)
    x0, y0, x1, y1 = rect
    inner = np.minimum(
        np.minimum(pts[:, 0] - x0, x1 - pts[:, 0]),
        np.minimum(pts[:, 1] - y0, y1 - pts[:, 1]),
    )
    return (inner >= 0.0) & (inner < band)
