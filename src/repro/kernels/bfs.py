"""Multi-source hop distances via packed-bitset frontier BFS.

One BFS per source costs O(n·m) Python dict operations for all-pairs.
The kernel instead tracks, per node, a *bitset over sources* that have
reached it, and expands every frontier simultaneously:

    B[u] <- B[u] | OR_{v in N(u)} B[v]        (one level, all sources)

executed as a single ``np.bitwise_or.reduceat`` over the CSR adjacency
per level.  Distances fall out by accumulation: before each expansion,
``dist[u, s] += 1`` for every still-unreached pair — so a pair first
reached after d expansions was counted in exactly the d pre-reach
states, i.e. ``dist = d``.  Unreached pairs are patched to -1 at the
end from the final reachability bits.

The level count is the graph's eccentricity span, so the kernel is
O(diameter · n · k / 8) byte-ops: a large win on the paper's dense,
low-diameter deployments (the only place all-pairs hops are measured),
a loss on path-like graphs — which is why ``auto`` never forces it and
the pure BFS oracle stays the default for generic traversal.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.graphs.graph import Graph, canonical_order
from repro.kernels._compat import require_numpy

Node = Hashable


def graph_to_csr(graph: Graph) -> Tuple[List[Node], Any, Any]:
    """``(node_list, heads, tails)`` — the graph's directed edge arrays.

    ``node_list`` is in canonical order and defines the index space;
    ``heads``/``tails`` hold both directions of every edge, sorted by
    ``(head, tail)``, ready for :func:`packed_hop_distances`.  Since
    node indices follow canonical order, the tail run of each head
    segment is itself in canonical order — the batched simulator reads
    its broadcast audiences straight out of these arrays.
    """
    np = require_numpy()
    node_list = canonical_order(graph.nodes())
    index = {node: i for i, node in enumerate(node_list)}
    # Build through Python lists: appending then converting once is
    # several times faster than element-wise writes into numpy arrays.
    heads_list: List[int] = []
    tails_list: List[int] = []
    for u, v in graph.edges():
        iu = index[u]
        iv = index[v]
        heads_list.append(iu)
        tails_list.append(iv)
        heads_list.append(iv)
        tails_list.append(iu)
    heads = np.array(heads_list, dtype=np.int64)
    tails = np.array(tails_list, dtype=np.int64)
    order = np.lexsort((tails, heads))
    return node_list, heads[order], tails[order]


def packed_hop_distances(
    heads: Any, tails: Any, num_nodes: int, sources: Optional[Any] = None
) -> Any:
    """Hop distances from ``sources`` (default: all nodes) to every node.

    ``heads``/``tails`` are the sorted directed edge arrays from
    :func:`graph_to_csr`.  Returns an int32 array of shape
    ``(len(sources), num_nodes)`` with -1 for unreachable pairs —
    exactly :func:`repro.graphs.traversal.bfs_distances` per row.
    """
    np = require_numpy()
    n = num_nodes
    src = np.arange(n) if sources is None else np.asarray(sources, dtype=np.int64)
    k = int(src.size)
    if n == 0 or k == 0:
        return np.empty((k, n), dtype=np.int32)
    # Packed reachability bitsets: B8[u, b] bit (128 >> (s % 8)) set
    # iff source src[s] has reached node u.  Width padded to whole
    # uint64 words so the OR passes run 8 bytes at a time.
    words8 = ((k + 63) // 64) * 8
    bits8 = np.zeros((n, words8), dtype=np.uint8)
    cols = np.arange(k)
    bits8[src, cols // 8] |= (np.uint8(128) >> (cols % 8)).astype(np.uint8)
    bits = bits8.view(np.uint64)
    # acc[u, s] counts the levels at which (src[s], u) was unreached.
    acc = np.zeros((n, k), dtype=np.uint32)
    if heads.size:
        run_start = np.searchsorted(heads, np.arange(n, dtype=np.int64))
        degrees = np.diff(np.append(run_start, heads.size))
        nonzero = degrees > 0
        or_starts = run_start[nonzero]
        while True:
            acc += np.unpackbits(~bits8, axis=1, count=k)
            gathered = np.bitwise_or.reduceat(bits[tails], or_starts, axis=0)
            old = bits[nonzero]
            if not (gathered & ~old).any():
                break
            bits[nonzero] = old | gathered
    else:
        acc += np.unpackbits(~bits8, axis=1, count=k)
    reached = np.unpackbits(bits8, axis=1, count=k).astype(bool)
    dist = acc.astype(np.int32)
    dist[~reached] = -1
    return np.ascontiguousarray(dist.T)


def vector_all_pairs_hop_distances(graph: Graph) -> Dict[Node, Dict[Node, int]]:
    """Drop-in twin of :func:`~repro.graphs.traversal.all_pairs_hop_distances`.

    Same result (a dict of per-source dicts holding only reachable
    nodes); computed with one packed-bitset sweep instead of n BFS
    runs.  The dict materialization costs O(reachable pairs) — callers
    that can consume the raw matrix should use
    :func:`packed_hop_distances` directly.
    """
    node_list, heads, tails = graph_to_csr(graph)
    dist = packed_hop_distances(heads, tails, len(node_list))
    return distances_to_dicts(node_list, dist)


def distances_to_dicts(
    node_list: Sequence[Node], dist: Any
) -> Dict[Node, Dict[Node, int]]:
    """Convert a ``(sources, nodes)`` distance matrix to BFS-style dicts."""
    result: Dict[Node, Dict[Node, int]] = {}
    for i, source in enumerate(node_list):
        rows = dist[i].tolist()
        result[source] = {
            node_list[j]: d for j, d in enumerate(rows) if d >= 0
        }
    return result
