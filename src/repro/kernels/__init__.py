"""Vectorized geometry/graph kernels for the measured hot paths.

The pure-Python implementations in :mod:`repro.graphs` and
:mod:`repro.geometry` are the *oracles*: simple, exact, and
dependency-free.  This package holds numpy-vectorized twins of the
paths the benchmarks actually measure:

* **UDG edge construction** (:func:`vector_udg_edges`,
  :func:`vector_adjacency`) — sorted cell binning plus blockwise
  pairwise ``distance_squared`` over the 9-cell neighborhoods, exposed
  as ``UnitDiskGraph(..., method="vector")``.
* **Multi-source hop distances** (:func:`packed_hop_distances`,
  :func:`vector_all_pairs_hop_distances`) — frontier BFS over packed
  source-bitsets (one ``bitwise_or.reduceat`` per level), used by
  ``all_pairs_hop_distances(..., method="vector")`` and the Theorem 11
  dilation measurements.  Best on the paper's dense, low-diameter
  deployments; on path-like (high-diameter) graphs the per-level matrix
  work loses to the pure BFS oracle.
* **Batch disk queries** (:func:`points_in_disk`,
  :func:`batch_points_in_disk`, :func:`count_points_in_disks`) — used
  by ``UnitDiskGraph.nodes_within_many`` and the measured packing
  extrema in :mod:`repro.geometry.packing`.
* **Spatial tiling** (:func:`tile_index_array`, :func:`bin_by_tile`,
  :func:`rect_distance_squared`, :func:`boundary_band_mask`) — cell
  binning and rectangle-band extraction behind the
  :class:`repro.shard.tiler.Tiler` halo/frontier fast path.

Every kernel computes squared distances with the same float64
operations in the same order as the oracles, so results are *exactly*
equal, not approximately — the equivalence tests assert set equality,
never closeness.

numpy is a declared dependency, but the package degrades gracefully:
:data:`HAVE_NUMPY` is ``False`` when the import fails, ``auto``
selection falls back to the pure paths, and asking for a vector kernel
explicitly raises :class:`KernelUnavailableError`.
"""

from repro.kernels._compat import (
    HAVE_NUMPY,
    KernelUnavailableError,
    require_numpy,
    resolve_method,
)
from repro.kernels.udg import vector_adjacency, vector_udg_edges
from repro.kernels.bfs import (
    graph_to_csr,
    packed_hop_distances,
    vector_all_pairs_hop_distances,
)
from repro.kernels.disk import (
    batch_points_in_disk,
    count_points_in_disks,
    points_in_disk,
)
from repro.kernels.shard import (
    bin_by_tile,
    boundary_band_mask,
    rect_distance_squared,
    tile_index_array,
)

__all__ = [
    "HAVE_NUMPY",
    "KernelUnavailableError",
    "require_numpy",
    "resolve_method",
    "vector_udg_edges",
    "vector_adjacency",
    "graph_to_csr",
    "packed_hop_distances",
    "vector_all_pairs_hop_distances",
    "points_in_disk",
    "batch_points_in_disk",
    "count_points_in_disks",
    "tile_index_array",
    "bin_by_tile",
    "rect_distance_squared",
    "boundary_band_mask",
]
