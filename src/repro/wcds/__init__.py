"""The paper's core contribution: two WCDS constructions and their
proven bounds."""

from repro.wcds.base import (
    WCDSResult,
    black_edges,
    is_weakly_connected_dominating_set,
    weakly_induced_subgraph,
)
from repro.wcds.algorithm1 import (
    LevelCalculationNode,
    algorithm1_centralized,
    algorithm1_distributed,
)
from repro.wcds.algorithm2 import (
    Algorithm2Node,
    algorithm2_centralized,
    algorithm2_distributed,
)
from repro.wcds import bounds

__all__ = [
    "WCDSResult",
    "black_edges",
    "is_weakly_connected_dominating_set",
    "weakly_induced_subgraph",
    "LevelCalculationNode",
    "algorithm1_centralized",
    "algorithm1_distributed",
    "Algorithm2Node",
    "algorithm2_centralized",
    "algorithm2_distributed",
    "bounds",
]
