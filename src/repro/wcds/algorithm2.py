"""Algorithm II: fully localized WCDS with a low-dilation spanner (§4.2).

The WCDS U is the union of two node sets:

* **MIS-dominators** S — the id-ranked greedy MIS, built by the same
  marking protocol as Algorithm I but ranked by bare node id (no
  spanning tree, no leader: fully localized);
* **additional-dominators** C — for every pair of MIS-dominators exactly
  three hops apart, the lower-id one selects one intermediate node on a
  3-hop path between them.

The message protocol follows the paper's step list:

1. ``MIS-DOMINATOR`` / ``GRAY`` — the marking phase declarations.
2. A gray node that has heard a declaration from *every* neighbor
   broadcasts ``1-HOP-DOMINATORS`` with its 1HopDomList.
3. Gray nodes and MIS-dominators build 2HopDomLists from those.
4. A gray node that has heard ``1-HOP-DOMINATORS`` from every gray
   neighbor broadcasts ``2-HOP-DOMINATORS`` with its 2HopDomList.
5. An MIS-dominator ``u`` hearing, via neighbor ``v``, of a dominator
   ``w`` with ``u < w`` that is in neither its 2- nor 3HopDomList adds
   ``(w, v, x)`` to its 3HopDomList and unicasts ``SELECTION`` to ``v``.
6. ``v`` declares itself an additional-dominator with an
   ``ADDITIONAL-DOMINATOR`` broadcast carrying ``(v, u, x, w)``.
7. The named intermediate ``x`` relays the declaration to ``w`` (the
   paper has ``w`` "receive" the message but ``w`` is two hops from
   ``v``, so a one-hop relay through ``x`` is required; see DESIGN.md),
   and ``w`` records the reverse entry ``(u, x, v)``.

Every node sends O(1) messages, giving Theorem 12's O(n) message and
O(n) time bounds.  An asynchrony note: with randomized latencies a
``2-HOP-DOMINATORS`` message can outrun a ``1-HOP-DOMINATORS`` message
on another link, so a dominator may select an additional-dominator for
a pair that later turns out to be 2 hops apart.  That only ever *adds*
a constant number of redundant dominators — the WCDS stays valid and
within the same packing bounds — and under the default synchronous
latency the race cannot occur.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Set, Tuple

from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances, is_connected
from repro.mis.centralized import greedy_mis
from repro.mis.distributed import MisNode
from repro.mis.ranking import id_ranking
from repro.obs.tracing import get_tracer
from repro.sim.config import SimConfig, merge_entry_args
from repro.sim.batched import make_simulator
from repro.sim.messages import Message
from repro.sim.node import NodeContext
from repro.sim.stats import SimStats
from repro.transport.reliable import aggregate_transport
from repro.wcds.base import BackboneResult, WCDSResult

MIS_DOMINATOR = "MIS-DOMINATOR"
GRAY = "GRAY"
ONE_HOP_DOMINATORS = "1-HOP-DOMINATORS"
TWO_HOP_DOMINATORS = "2-HOP-DOMINATORS"
SELECTION = "SELECTION"
ADDITIONAL_DOMINATOR = "ADDITIONAL-DOMINATOR"
ADDITIONAL_RELAY = "ADDITIONAL-RELAY"

#: Telemetry grouping of Algorithm II's message kinds into the paper's
#: logical phases.  Unlike Algorithm I the phases interleave inside one
#: simulation run, so each phase's span carries its message count and
#: its simulated-time activity window rather than a wall-clock slice.
PHASE_KINDS = {
    "marking": (MIS_DOMINATOR, GRAY),
    "dominator_lists": (ONE_HOP_DOMINATORS, TWO_HOP_DOMINATORS),
    "selection": (SELECTION, ADDITIONAL_DOMINATOR, ADDITIONAL_RELAY),
}


class Algorithm2Node(MisNode):
    """Full per-node state machine for Algorithm II."""

    black_kind = MIS_DOMINATOR
    gray_kind = GRAY

    def __init__(self, ctx: NodeContext, ranks) -> None:
        super().__init__(ctx, ranks)
        self.is_additional = False
        self.one_hop_dom: Set[Hashable] = set()
        self.two_hop_dom: Dict[Hashable, Hashable] = {}  # dominator -> via
        self.three_hop_dom: Dict[Hashable, Tuple[Hashable, Hashable]] = {}
        self._declared: Set[Hashable] = set()
        self._gray_neighbors: Set[Hashable] = set()
        self._one_hop_heard: Set[Hashable] = set()
        self._sent_one_hop = False
        self._sent_two_hop = False

    # ------------------------------------------------------------------
    # Marking-phase hooks (rules 1-3 of the paper's step list)
    # ------------------------------------------------------------------
    def declare_gray(self, dominator: Hashable) -> None:
        self.one_hop_dom.add(dominator)
        super().declare_gray(dominator)
        self._maybe_send_one_hop()

    def on_message(self, msg: Message) -> None:
        kind = msg.kind
        if kind == MIS_DOMINATOR:
            self._declared.add(msg.sender)
            if self.color != "black":
                self.one_hop_dom.add(msg.sender)
                # A 2-hop classification that arrived early is corrected:
                # the sender is in fact one hop away.
                self.two_hop_dom.pop(msg.sender, None)
            super().on_message(msg)
            self._maybe_send_one_hop()
            self._maybe_send_two_hop()
        elif kind == GRAY:
            self._declared.add(msg.sender)
            self._gray_neighbors.add(msg.sender)
            super().on_message(msg)
            self._maybe_send_one_hop()
            self._maybe_send_two_hop()
        elif kind == ONE_HOP_DOMINATORS:
            self._on_one_hop(msg)
        elif kind == TWO_HOP_DOMINATORS:
            self._on_two_hop(msg)
        elif kind == SELECTION:
            self._on_selection(msg)
        elif kind == ADDITIONAL_DOMINATOR:
            self._on_additional(msg)
        elif kind == ADDITIONAL_RELAY:
            self._on_additional_relay(msg)

    # ------------------------------------------------------------------
    # 1-HOP-DOMINATORS (rules 4-6)
    # ------------------------------------------------------------------
    def _maybe_send_one_hop(self) -> None:
        if (
            self.color == "gray"
            and not self._sent_one_hop
            and self._declared >= self.ctx.neighbors
        ):
            self._sent_one_hop = True
            self.ctx.broadcast(
                ONE_HOP_DOMINATORS, doms=tuple(sorted(self.one_hop_dom, key=repr))
            )
            self._maybe_send_two_hop()

    def _on_one_hop(self, msg: Message) -> None:
        self._one_hop_heard.add(msg.sender)
        if self.color == "black":
            for dom in msg["doms"]:
                if dom == self.node_id or dom in self.two_hop_dom:
                    continue
                self.two_hop_dom[dom] = msg.sender
                self.three_hop_dom.pop(dom, None)
        else:
            for dom in msg["doms"]:
                if dom in self.one_hop_dom or dom in self.two_hop_dom:
                    continue
                self.two_hop_dom[dom] = msg.sender
        self._maybe_send_two_hop()

    # ------------------------------------------------------------------
    # 2-HOP-DOMINATORS (rules 7-8)
    # ------------------------------------------------------------------
    def _maybe_send_two_hop(self) -> None:
        if (
            self.color == "gray"
            and self._sent_one_hop
            and not self._sent_two_hop
            and self._gray_neighbors <= self._one_hop_heard
            and self._declared >= self.ctx.neighbors
        ):
            self._sent_two_hop = True
            self.ctx.broadcast(
                TWO_HOP_DOMINATORS,
                doms=tuple(sorted(self.two_hop_dom.items(), key=repr)),
            )

    def _on_two_hop(self, msg: Message) -> None:
        if self.color != "black":
            return
        via = msg.sender
        for dom, hop in msg["doms"]:
            if dom == self.node_id:
                continue
            if dom in self.two_hop_dom or dom in self.three_hop_dom:
                continue
            if not self.rank < self._ranks.get(dom, (dom,)):
                continue
            self.three_hop_dom[dom] = (via, hop)
            # The paper's SELECTION message carries the full (u, v, x, w)
            # tuple; the receiver IS v, so it never reads that field.
            self.ctx.send(via, SELECTION, u=self.node_id, v=via, x=hop, w=dom)  # repro: noqa[P3]

    # ------------------------------------------------------------------
    # Additional-dominator declaration and relay (rules 9-10)
    # ------------------------------------------------------------------
    def _on_selection(self, msg: Message) -> None:
        self.is_additional = True
        self.ctx.broadcast(
            ADDITIONAL_DOMINATOR,
            v=self.node_id,
            u=msg["u"],
            x=msg["x"],
            w=msg["w"],
        )

    def _on_additional(self, msg: Message) -> None:
        if msg["x"] == self.node_id and msg["w"] in self.ctx.neighbors:
            self.ctx.send(
                msg["w"],
                ADDITIONAL_RELAY,
                v=msg["v"],
                u=msg["u"],
                x=msg["x"],
                w=msg["w"],
            )

    def _on_additional_relay(self, msg: Message) -> None:
        if msg["w"] != self.node_id or self.color != "black":
            return
        dominator = msg["u"]
        if dominator not in self.two_hop_dom:
            self.three_hop_dom.setdefault(dominator, (msg["x"], msg["v"]))

    def on_neighbor_down(self, peer: Hashable) -> None:
        """Transport liveness hook: forget a dead peer so the "heard
        from every neighbor" barriers (which compare against the live
        neighbor view) can still be met."""
        super().on_neighbor_down(peer)
        self.one_hop_dom.discard(peer)
        self._gray_neighbors.discard(peer)
        self._maybe_send_one_hop()
        self._maybe_send_two_hop()

    def result(self) -> Dict[str, object]:
        return {
            "color": self.color,
            "is_additional": self.is_additional,
            "one_hop_dom": frozenset(self.one_hop_dom),
            "two_hop_dom": dict(self.two_hop_dom),
            "three_hop_dom": dict(self.three_hop_dom),
        }


def _phase_messages(stats: SimStats) -> Dict[str, Dict[str, float]]:
    """Per-phase message counts and simulated activity windows, from
    the run's per-kind statistics."""
    out: Dict[str, Dict[str, float]] = {}
    for phase, kinds in PHASE_KINDS.items():
        messages = sum(stats.by_kind.get(kind, 0) for kind in kinds)
        firsts = [
            stats.first_send_by_kind[kind]
            for kind in kinds
            if kind in stats.first_send_by_kind
        ]
        lasts = [
            stats.last_send_by_kind[kind]
            for kind in kinds
            if kind in stats.last_send_by_kind
        ]
        out[phase] = {
            "messages": messages,
            "sim_start": min(firsts) if firsts else 0.0,
            "sim_end": max(lasts) if lasts else 0.0,
        }
    return out


def algorithm2_distributed(
    graph: Graph,
    *,
    seed: Optional[int] = None,
    tracer=None,
    registry=None,
    transport: Any = None,
    sim: Optional[SimConfig] = None,
    **legacy: Any,
) -> BackboneResult:
    """Run the full Algorithm II protocol to quiescence.

    ``meta`` carries each node's dominator lists (the routing state
    §4.2's clusterhead router consumes), the gray/black colors, the
    run's message statistics, and ``phase_messages`` — per-phase
    message counts with simulated-time activity windows.

    Telemetry mirrors :func:`repro.wcds.algorithm1_distributed`: the
    run and each logical phase emit spans on ``tracer`` (phases
    interleave inside the single simulation, so phase spans carry
    message counts and simulated-time windows, not wall-clock slices),
    and a ``registry`` receives per-kind and per-phase counters.
    """
    config = merge_entry_args(
        sim, seed=seed, transport=transport, legacy=legacy,
        where="algorithm2_distributed",
    )
    if graph.num_nodes == 0:
        raise ValueError("Algorithm II requires a non-empty graph")
    if not is_connected(graph):
        raise ValueError("Algorithm II requires a connected graph")
    if tracer is None:
        tracer = get_tracer()
    with tracer.span("algorithm2", n=graph.num_nodes) as run_span:
        ranking = id_ranking(graph)
        simulator = make_simulator(
            graph, lambda ctx: Algorithm2Node(ctx, ranking), config,
            registry=registry,
        )
        stats = simulator.run()
        phase_messages = _phase_messages(stats)
        for phase, split in phase_messages.items():
            with tracer.span(phase) as span:
                span.set_attr("messages", split["messages"])
                span.set_attr("sim_start", split["sim_start"])
                span.set_attr("sim_end", split["sim_end"])
            if registry is not None:
                registry.counter(
                    "protocol_phase_messages_total",
                    "Messages sent during one protocol phase",
                    algorithm="2", phase=phase,
                ).inc(split["messages"])
        if registry is not None:
            registry.counter(
                "protocol_phase_rounds_total",
                "Simulated rounds spent in one protocol phase",
                algorithm="2", phase="all",
            ).inc(stats.finish_time)
        run_span.set_attr("messages", stats.messages_sent)
        run_span.set_attr("rounds", stats.finish_time)
        results = simulator.collect_results()
        crashed = simulator.crashed
        survivors = [n for n in graph.nodes() if n not in crashed]
        undecided = [n for n in survivors if results[n]["color"] == "white"]
        if undecided:
            raise RuntimeError(f"marking did not terminate: {undecided!r}")
        mis = frozenset(n for n in survivors if results[n]["color"] == "black")
        additional = frozenset(
            n for n in survivors if results[n]["is_additional"]
        )
        # A node can be both under faults: a crashed dominator's slot
        # re-marked black after an additional-dominator declaration.
        additional -= mis
        run_span.set_attr("backbone", len(mis | additional))
    meta = {"node_state": results, "stats": stats,
            "phase_messages": phase_messages}
    if config.transport_config is not None:
        meta["transport_totals"] = aggregate_transport(results)
    if crashed:
        meta["crashed"] = crashed
    return BackboneResult(
        dominators=mis | additional,
        mis_dominators=mis,
        additional_dominators=additional,
        algorithm="algorithm2",
        meta=meta,
    )


def algorithm2_centralized(graph: Graph) -> WCDSResult:
    """Centralized reference for Algorithm II.

    The MIS is identical to the distributed one (id-greedy MIS is
    latency-independent).  For additional-dominators the centralized
    twin covers exactly the pairs of MIS nodes at hop distance 3,
    choosing for each pair ``(u, w)`` with ``u < w`` the minimum-id
    first-hop neighbor of ``u`` that lies on a 3-hop path to ``w`` —
    the distributed run may pick a different (equally valid)
    intermediate depending on message arrival order.
    """
    if graph.num_nodes == 0:
        raise ValueError("Algorithm II requires a non-empty graph")
    if not is_connected(graph):
        raise ValueError("Algorithm II requires a connected graph")
    mis = greedy_mis(graph)
    additional: Set[Hashable] = set()
    pairs_covered = []
    for u in sorted(mis):
        dist_from_u = bfs_distances(graph, u, cutoff=3)
        targets = [w for w in mis if w > u and dist_from_u.get(w) == 3]
        if not targets:
            continue
        for w in targets:
            dist_from_w = bfs_distances(graph, w, cutoff=2)
            candidates = [
                v
                for v in graph.adjacency(u)
                if dist_from_w.get(v) == 2
            ]
            if not candidates:  # pragma: no cover - impossible if dist==3
                raise RuntimeError("no intermediate on a 3-hop path")
            chosen = min(candidates)
            additional.add(chosen)
            pairs_covered.append((u, w, chosen))
    additional -= mis  # MIS nodes are never intermediates, but be safe
    return WCDSResult(
        dominators=frozenset(mis | additional),
        mis_dominators=frozenset(mis),
        additional_dominators=frozenset(additional),
        meta={"pairs_covered": pairs_covered},
    )
