"""Weakly-connected dominating sets: definitions and validation.

A set ``S`` is a WCDS of ``G = (V, E)`` when ``S`` dominates ``G`` and
the subgraph *weakly induced* by ``S`` — ``G' = (V, E')`` with ``E'``
the edges having at least one endpoint in ``S`` (the paper's "black
edges") — is connected.  ``G'`` is the candidate sparse spanner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Set, Tuple

from repro.graphs.graph import Graph
from repro.graphs.traversal import is_connected
from repro.mis.properties import is_dominating_set


def black_edges(graph: Graph, dominators: Iterable[Hashable]) -> List[Tuple[Hashable, Hashable]]:
    """Edges of ``graph`` with at least one endpoint in ``dominators``."""
    members = set(dominators)
    return [(u, v) for u, v in graph.edges() if u in members or v in members]


def weakly_induced_subgraph(graph: Graph, dominators: Iterable[Hashable]) -> Graph:
    """The subgraph ``G' = (V, E')`` weakly induced by ``dominators``.

    Keeps *all* nodes of ``graph`` — the spanner must span V — and only
    the black edges.
    """
    members = set(dominators)
    sub = Graph()
    for node in graph.nodes():
        sub.add_node(node)
    for u, v in black_edges(graph, members):
        sub.add_edge(u, v)
    return sub


def is_weakly_connected_dominating_set(
    graph: Graph, dominators: Iterable[Hashable]
) -> bool:
    """Whether ``dominators`` is a WCDS of ``graph``.

    On a connected graph this means: dominating, and the weakly induced
    subgraph connects every node (gray nodes are attached by their
    domination edges, so checking ``G'`` connected suffices).
    """
    members = set(dominators)
    if not members:
        return graph.num_nodes == 0
    if not is_dominating_set(graph, members):
        return False
    return is_connected(weakly_induced_subgraph(graph, members))


@dataclass(frozen=True)
class WCDSResult:
    """Outcome of a WCDS construction.

    ``dominators`` is the whole WCDS U.  For Algorithm II it splits into
    ``mis_dominators`` (the MIS S) and ``additional_dominators`` (the
    set C of 3-hop connectors); for Algorithm I every dominator is an
    MIS dominator and ``additional_dominators`` is empty.  ``meta``
    carries algorithm-specific extras (levels, leader, dominator lists,
    message stats) used by the experiments.
    """

    dominators: FrozenSet[Hashable]
    mis_dominators: FrozenSet[Hashable]
    additional_dominators: FrozenSet[Hashable] = frozenset()
    meta: Dict[str, object] = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        expected = self.mis_dominators | self.additional_dominators
        if self.dominators != expected:
            raise ValueError(
                "dominators must be the union of MIS and additional dominators"
            )
        if self.mis_dominators & self.additional_dominators:
            raise ValueError("a node cannot be both MIS and additional dominator")

    @property
    def size(self) -> int:
        """|U| — the paper's objective to minimize."""
        return len(self.dominators)

    def gray_nodes(self, graph: Graph) -> Set[Hashable]:
        """Nodes of ``graph`` that are dominated but not dominators."""
        return set(graph.nodes()) - set(self.dominators)

    def spanner(self, graph: Graph) -> Graph:
        """The weakly induced subgraph (black-edge spanner) on ``graph``."""
        return weakly_induced_subgraph(graph, self.dominators)

    def validate(self, graph: Graph) -> None:
        """Raise ``AssertionError`` unless this is a valid WCDS of
        ``graph``."""
        if not is_dominating_set(graph, self.dominators):
            raise AssertionError("result is not a dominating set")
        if not is_connected(self.spanner(graph)):
            raise AssertionError("weakly induced subgraph is not connected")


@dataclass(frozen=True)
class BackboneResult(WCDSResult):
    """The common return type of every unified backbone entry point.

    Extends :class:`WCDSResult` with the registry name of the algorithm
    that produced it, so heterogeneous results (paper algorithms,
    baselines, the bare MIS) can be compared and reported uniformly.
    Note that not every backbone is a *weakly connected* dominating set
    — a bare MIS is dominating but may not be weakly connected; use
    :meth:`WCDSResult.validate` /
    :func:`is_weakly_connected_dominating_set` to check.
    """

    algorithm: str = ""
