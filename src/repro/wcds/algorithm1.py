"""Algorithm I: WCDS via level-based-ranked MIS (Section 4.1).

Three phases, exactly as the paper structures them:

1. **Leader election** — elect the minimum-id node and build a spanning
   tree rooted at it (``repro.election``); O(n log n) messages dominate
   the algorithm's message complexity.
2. **Level calculation** — the root announces level 0; every node, on
   hearing its parent's level, takes level+1 and announces.  Nodes
   record the levels of all neighbors (that is how the ``(level, id)``
   ranks become locally known), and a COMPLETE echo climbs the tree so
   the root knows when to start phase 3.  Exactly one LEVEL broadcast
   per node plus one COMPLETE unicast per non-root node: O(n) messages.
3. **Color marking** — the distributed greedy-MIS marking under the
   ``(level, id)`` ranking (``repro.mis.distributed``): the root marks
   itself black and broadcasts BLACK; whites go gray on the first BLACK
   they hear; a white goes black once all lower-ranked neighbors
   reported GRAY.  One declaration per node: O(n) messages.

Theorem 5: the resulting MIS is a WCDS.  Lemma 7: its size is at most
5·opt.  Theorem 8: its black edges form a sparse spanner.

The centralized twin computes the same set directly (BFS levels from the
minimum id node + rank-greedy MIS); under the synchronous latency model
the distributed run provably produces the identical set, which the
property tests check.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Hashable, Optional, Set, Tuple

from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances, is_connected
from repro.mis.centralized import greedy_mis
from repro.mis.distributed import MisNode
from repro.mis.ranking import level_ranking
from repro.election.protocol import ElectionResult, elect_leader
from repro.obs.cost import annotate_phase as _annotate_phase
from repro.obs.tracing import get_tracer
from repro.sim.config import SimConfig, merge_entry_args
from repro.sim.batched import make_simulator
from repro.sim.messages import Message
from repro.sim.node import NodeContext, ProtocolNode
from repro.sim.stats import SimStats
from repro.transport.reliable import aggregate_transport
from repro.wcds.base import BackboneResult, WCDSResult

LEVEL = "LEVEL"
COMPLETE = "COMPLETE"


def algorithm1_centralized(graph: Graph, root: Optional[Hashable] = None) -> WCDSResult:
    """Centralized reference for Algorithm I.

    ``root`` defaults to the minimum node id — the node the election
    phase elects.  Levels are BFS hop distances from the root (the BFS
    tree is the spanning tree the synchronous election builds).
    """
    if graph.num_nodes == 0:
        raise ValueError("Algorithm I requires a non-empty graph")
    if not is_connected(graph):
        raise ValueError("Algorithm I requires a connected graph")
    if root is None:
        root = min(graph.nodes())
    levels = bfs_distances(graph, root)
    ranking = level_ranking(graph, levels)
    mis = greedy_mis(graph, ranking)
    return WCDSResult(
        dominators=frozenset(mis),
        mis_dominators=frozenset(mis),
        meta={"leader": root, "levels": levels},
    )


class LevelCalculationNode(ProtocolNode):
    """Phase 2 node: learn own level, record neighbor levels, echo
    COMPLETE up the tree."""

    def __init__(
        self,
        ctx: NodeContext,
        parent: Optional[Hashable],
        children: FrozenSet[Hashable],
    ) -> None:
        super().__init__(ctx)
        self.parent = parent
        self.children = set(children)
        self.level: Optional[int] = None
        self.neighbor_levels: Dict[Hashable, int] = {}
        self._pending_complete: Set[Hashable] = set(children)
        self.tree_complete = False
        self._parent_down = False

    def on_start(self) -> None:
        if self.parent is None:
            self._announce(0)

    def on_message(self, msg: Message) -> None:
        if msg.kind == LEVEL:
            self.neighbor_levels[msg.sender] = msg["level"]
            if msg.sender == self.parent and self.level is None:
                self._announce(msg["level"] + 1)
            elif self._parent_down and self.level is None:
                # Our tree parent crashed before leveling us; adopt a
                # level from any leveled neighbor instead.
                self._announce(msg["level"] + 1)
        elif msg.kind == COMPLETE:
            self._pending_complete.discard(msg.sender)
            self._maybe_complete()

    def on_neighbor_down(self, peer: Hashable) -> None:
        """Transport liveness hook: stop waiting for a dead child's
        COMPLETE; if our parent died before leveling us, adopt the
        smallest level already heard from any neighbor."""
        self._pending_complete.discard(peer)
        if peer == self.parent and self.level is None:
            self._parent_down = True
            if self.neighbor_levels:
                self._announce(min(self.neighbor_levels.values()) + 1)
        self._maybe_complete()

    def _announce(self, level: int) -> None:
        self.level = level
        self.ctx.broadcast(LEVEL, level=level)
        self._maybe_complete()

    def _maybe_complete(self) -> None:
        if self.level is None or self._pending_complete or self.tree_complete:
            return
        self.tree_complete = True
        if self.parent is not None:
            self.ctx.send(self.parent, COMPLETE)

    def result(self) -> Dict[str, object]:
        return {
            "level": self.level,
            "neighbor_levels": dict(self.neighbor_levels),
            "complete": self.tree_complete,
        }


def _run_level_phase(
    graph: Graph,
    election: ElectionResult,
    config: Optional[SimConfig] = None,
    *,
    registry=None,
    **legacy: Any,
) -> Tuple[Dict[Hashable, int], SimStats, FrozenSet[Hashable]]:
    """Run phase 2; returns ``(levels, stats, crashed)``.

    Under a faulty config, completeness is only required of the
    survivors and the COMPLETE-echo barrier is waived (each phase is
    already run to quiescence, which is a stronger barrier).
    """
    from repro.sim.config import coerce_sim_config

    config = coerce_sim_config(config, legacy, "_run_level_phase")
    sim = make_simulator(
        graph,
        lambda ctx: LevelCalculationNode(
            ctx,
            election.parent.get(ctx.node_id),
            election.children.get(ctx.node_id, frozenset()),
        ),
        config,
        registry=registry,
    )
    stats = sim.run()
    results = sim.collect_results()
    crashed = sim.crashed
    survivors = [n for n in graph.nodes() if n not in crashed]
    unleveled = [n for n in survivors if results[n]["level"] is None]
    if unleveled:
        raise RuntimeError(f"level calculation did not reach: {unleveled!r}")
    if not config.faulty and not results[election.leader]["complete"]:
        raise RuntimeError("COMPLETE echo never reached the root")
    levels = {
        n: results[n]["level"]
        for n in results
        if results[n]["level"] is not None
    }
    return levels, stats, crashed


def algorithm1_distributed(
    graph: Graph,
    *,
    seed: Optional[int] = None,
    tracer=None,
    registry=None,
    transport: Any = None,
    sim: Optional[SimConfig] = None,
    **legacy: Any,
) -> BackboneResult:
    """Run the full three-phase distributed Algorithm I.

    Phases run back to back (each simulated to quiescence — in a real
    network the COMPLETE echo provides the same barrier).  The result's
    ``meta`` carries the leader, levels, and per-phase plus aggregate
    message statistics for the complexity experiments.

    Telemetry: each phase runs inside a span of ``tracer`` (default:
    the process tracer, a no-op unless ``repro.obs.set_tracer`` was
    called) annotated with its message and round totals, and a
    ``registry`` receives per-kind ``sim_messages_total`` counters plus
    per-phase ``protocol_phase_messages_total`` /
    ``protocol_phase_rounds_total``.
    """
    config = merge_entry_args(
        sim, seed=seed, transport=transport, legacy=legacy,
        where="algorithm1_distributed",
    )
    plan = config.fault_plan
    if tracer is None:
        tracer = get_tracer()
    with tracer.span("algorithm1", n=graph.num_nodes) as run_span:
        # Each phase is a separate simulation run back to back, so the
        # fault plan's clock is rebased at every phase boundary: a
        # crash scheduled mid-run lands in whichever phase is active
        # at that simulated time.
        elapsed = 0.0
        with tracer.span("election") as span:
            election = elect_leader(
                graph, sim=config.with_plan(plan.advanced(elapsed)),
                registry=registry,
            )
            _annotate_phase(span, registry, "1", "election", election.stats)
            elapsed += election.stats.finish_time
        with tracer.span("levels") as span:
            levels, level_stats, crashed = _run_level_phase(
                graph, election, config.with_plan(plan.advanced(elapsed)),
                registry=registry,
            )
            _annotate_phase(span, registry, "1", "levels", level_stats)
            elapsed += level_stats.finish_time
        with tracer.span("marking") as span:
            if config.faulty:
                ranking = {n: (levels[n], n) for n in levels}
            else:
                ranking = level_ranking(graph, levels)
            marking_sim = make_simulator(
                graph, lambda ctx: MisNode(ctx, ranking),
                config.with_plan(plan.advanced(elapsed)),
                registry=registry,
            )
            marking_stats = marking_sim.run()
            _annotate_phase(span, registry, "1", "marking", marking_stats)
        results = marking_sim.collect_results()
        crashed = marking_sim.crashed
        survivors = [n for n in graph.nodes() if n not in crashed]
        colors = {n: res["color"] for n, res in results.items()}
        undecided = [n for n in survivors if colors[n] == "white"]
        if undecided:
            raise RuntimeError(f"color marking did not terminate: {undecided!r}")
        mis = frozenset(n for n in survivors if colors[n] == "black")
        phase_stats = {
            "election": election.stats,
            "levels": level_stats,
            "marking": marking_stats,
        }
        total_messages = sum(stats.messages_sent for stats in phase_stats.values())
        finish_time = sum(stats.finish_time for stats in phase_stats.values())
        run_span.set_attr("messages", total_messages)
        run_span.set_attr("rounds", finish_time)
        run_span.set_attr("backbone", len(mis))
    meta = {
        "leader": election.leader,
        "levels": levels,
        "colors": colors,
        "phase_stats": phase_stats,
        "total_messages": total_messages,
        "finish_time": finish_time,
    }
    if config.transport_config is not None:
        meta["transport_totals"] = aggregate_transport(results)
    if crashed:
        meta["crashed"] = crashed
    return BackboneResult(
        dominators=mis,
        mis_dominators=mis,
        algorithm="algorithm1",
        meta=meta,
    )
