"""The paper's proven bounds, as executable formulas.

Benchmarks print these next to measured values; property tests assert
the measurements never exceed them.  Constants garbled by OCR in the
source text are re-derived in DESIGN.md.
"""

from __future__ import annotations

from repro.geometry.packing import (
    mis_neighbors_bound,
    mis_three_hop_bound,
    mis_two_hop_bound,
)

#: Lemma 1 / Lemma 7: an MIS of a unit-disk graph has at most 5·opt
#: nodes, where opt = |MWCDS| — hence Algorithm I's ratio.
ALGORITHM1_RATIO = 5

#: Theorem 10: |U| ≤ |S| + 47|S| = 48|S| ≤ 48·(5·opt) = 240·opt.
ALGORITHM2_MIS_MULTIPLIER = 1 + mis_three_hop_bound()  # 48
ALGORITHM2_RATIO = ALGORITHM2_MIS_MULTIPLIER * ALGORITHM1_RATIO  # 240

#: Theorem 11: hop dilation h' ≤ 3·h + 2.
TOPOLOGICAL_DILATION_FACTOR = 3
TOPOLOGICAL_DILATION_OFFSET = 2

#: Theorem 11 via Lemma 6 (α=3, β=2): l' ≤ 2α·l + α + β = 6·l + 5.
GEOMETRIC_DILATION_FACTOR = 6
GEOMETRIC_DILATION_OFFSET = 5


def algorithm1_size_bound(opt: int) -> int:
    """Lemma 7: Algorithm I's WCDS has at most ``5 * opt`` nodes."""
    return ALGORITHM1_RATIO * opt


def algorithm2_size_bound_from_mis(mis_size: int) -> int:
    """Theorem 10's intermediate bound: |U| ≤ 48·|S|."""
    return ALGORITHM2_MIS_MULTIPLIER * mis_size


def algorithm2_size_bound(opt: int) -> int:
    """Theorem 10: |U| ≤ 240·opt (loose; see DESIGN.md)."""
    return ALGORITHM2_RATIO * opt


def algorithm1_edge_bound(num_gray: int) -> int:
    """Theorem 8: every black edge joins a gray node to a black node and
    a gray node has ≤ 5 MIS neighbors, so |E'| ≤ 5·#gray."""
    return mis_neighbors_bound() * num_gray


def algorithm2_edge_bound(num_gray: int, mis_size: int) -> int:
    """Theorem 10's edge count: ≤ 9·#gray + 47·|S|.

    The three edge types: gray-S (≤5 per gray), S-C (≤47 per MIS node),
    gray-C (≤4 per gray, since ≤23 MIS nodes within 2 hops of a gray
    node... the paper charges 4 C-neighbors per gray node — we use the
    paper's stated constants 9·gray + 47·|S|).
    """
    return 9 * num_gray + mis_three_hop_bound() * mis_size


def topological_dilation_bound(hops_in_g: int) -> int:
    """Theorem 11: minimum hops in the spanner ≤ 3·h + 2."""
    return TOPOLOGICAL_DILATION_FACTOR * hops_in_g + TOPOLOGICAL_DILATION_OFFSET


def geometric_dilation_bound(length_in_g: float) -> float:
    """Theorem 11 + Lemma 6: spanner min-hop path length ≤ 6·l + 5."""
    return GEOMETRIC_DILATION_FACTOR * length_in_g + GEOMETRIC_DILATION_OFFSET


def lemma6_length_bound(alpha: float, beta: float, length_in_g: float) -> float:
    """Lemma 6: if h' ≤ α·h + β for non-adjacent pairs, then
    l' < 2α·l + α + β."""
    return 2 * alpha * length_in_g + alpha + beta
