"""Optimality oracles: how far from optimal are the backbones, really?

The paper proves Algorithm I within 5·opt (Theorem 5) and Algorithm II
within 240·opt (Theorem 10) — worst-case envelopes, not measurements.
This package supplies the missing denominator:

* **LP-strengthened exact search** (:mod:`repro.opt.exact`) — a bitset
  branch & bound for minimum dominating set / WCDS / CDS whose
  admissible pruning bounds include the fractional set-cover LP solved
  by :mod:`scipy.optimize` (:mod:`repro.opt.lp`), pushing certified
  optima from the n ≈ 18 of :mod:`repro.baselines.exact` to n ≈ 60 on
  the benchmark densities.  The LP only *prunes* — results are
  bit-identical with ``lp="on"`` and ``lp="off"``.
* **Scalable heuristics** (:mod:`repro.opt.heuristics`) — vectorized
  greedy MWDS over the CSR layer, 2-hop packing lower bounds, and
  2-hop Steiner connection, sandwiching the optimum to n ≈ 2000+.
* **Certificates** (:mod:`repro.opt.oracle`) —
  :func:`certified_optimum` picks the strongest engine the instance
  allows and returns a proven ``lower <= opt <= upper`` sandwich.
* **Ratio measurement** (:mod:`repro.opt.ratio`) — seed sweeps of the
  registry algorithms on the :mod:`repro.sim.fleet` runner, divided by
  the certificate lower bound: the *real* empirical ratios, reported
  conservatively.

scipy is optional (``pip install repro[opt]``): without it the exact
engine still runs combinatorially-pruned (``lp="auto"`` degrades, like
the numpy gate in :mod:`repro.kernels`), and ``lp="on"`` raises
:class:`LPUnavailableError`.
"""

from repro.opt._scipy import (
    HAVE_SCIPY,
    LPUnavailableError,
    require_scipy,
    resolve_lp,
)
from repro.opt.exact import (
    PROBLEMS,
    SearchLimitExceeded,
    SearchStats,
    opt_minimum,
    opt_minimum_cds,
    opt_minimum_dominating_set,
    opt_minimum_wcds,
)
from repro.opt.heuristics import (
    connect_weakly,
    greedy_mwds,
    greedy_mwds_wcds,
    packing_lower_bound,
    two_hop_packing,
)
from repro.opt.lp import (
    LP_TOLERANCE,
    fractional_domination,
    lp_domination_bound,
    lp_lower_bound,
)
from repro.opt.oracle import (
    BASELINE_ORACLE_NODES,
    DEFAULT_EXACT_NODES,
    OptimalityCertificate,
    certified_optimum,
)
from repro.opt.ratio import (
    AlgorithmRatios,
    RatioTrial,
    THEOREM_ENVELOPES,
    measure_ratios,
    ratio_report,
)

__all__ = [
    "AlgorithmRatios",
    "BASELINE_ORACLE_NODES",
    "DEFAULT_EXACT_NODES",
    "HAVE_SCIPY",
    "LPUnavailableError",
    "LP_TOLERANCE",
    "OptimalityCertificate",
    "PROBLEMS",
    "RatioTrial",
    "SearchLimitExceeded",
    "SearchStats",
    "THEOREM_ENVELOPES",
    "certified_optimum",
    "connect_weakly",
    "fractional_domination",
    "greedy_mwds",
    "greedy_mwds_wcds",
    "lp_domination_bound",
    "lp_lower_bound",
    "measure_ratios",
    "opt_minimum",
    "opt_minimum_cds",
    "opt_minimum_dominating_set",
    "opt_minimum_wcds",
    "packing_lower_bound",
    "ratio_report",
    "two_hop_packing",
]
