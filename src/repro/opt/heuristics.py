"""Scalable MWDS heuristics: greedy domination, packing, 2-hop Steiner.

Beyond the exact oracle's reach (n ≈ 60–100), approximation ratios are
sandwiched between cheap certified bounds:

* :func:`greedy_mwds` — the classic minimum-weight dominating set
  greedy (pick the candidate minimizing weight per newly-dominated
  node), an **upper** bound on |MDS|; vectorized over the CSR arrays of
  :func:`repro.kernels.bfs.graph_to_csr` with a bit-identical pure
  fallback, same pattern as ``repro.kernels``;
* :func:`two_hop_packing` — a maximal 2-hop-separated node set (the
  *2-hop Steiner terminals* of the distributed MWCDS literature);
  members have pairwise-disjoint closed neighborhoods, so its size is
  an admissible **lower** bound on |MDS| <= |MWCDS| <= |MCDS|;
* :func:`connect_weakly` — 2-hop Steiner connection: merge the weak
  components of a dominating set by buying every other node of a
  shortest inter-component path (``floor((d-1)/2)`` connectors per
  merge), yielding a valid WCDS — with :func:`greedy_mwds_wcds` as the
  composed **upper** bound on |MWCDS| feasible to n ≈ 2000 and beyond.

Node weights default to 1 (the paper's unweighted objective); passing a
weight mapping turns both greedy rules into their MWDS forms, the
stepping stone to the weighted backbone family on the roadmap.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set

from repro.graphs.graph import Graph, canonical_order
from repro.graphs.traversal import is_connected
from repro.kernels._compat import resolve_method
from repro.mis.properties import is_dominating_set
from repro.wcds.base import weakly_induced_subgraph

Node = Hashable


def greedy_mwds(
    graph: Graph,
    weights: Optional[Mapping[Node, float]] = None,
    *,
    method: str = "auto",
) -> Set[Node]:
    """Greedy minimum-weight dominating set.

    Repeatedly buys the candidate with the smallest weight per newly
    dominated node (ties broken canonically), until every node is
    dominated.  With unit weights this is the ln(Δ)-approximate greedy
    set cover over closed neighborhoods — an upper bound on |MDS|.

    ``method`` resolves like the kernels: ``"vector"`` runs the numpy
    CSR implementation, ``"pure"`` the dictionary one, ``"auto"`` picks
    by availability and size; the chosen set is identical either way.
    """
    if graph.num_nodes == 0:
        return set()
    choice = resolve_method(method, size=graph.num_nodes)
    if choice == "vector":
        return _greedy_mwds_vector(graph, weights)
    return _greedy_mwds_pure(graph, weights)


def _greedy_mwds_pure(
    graph: Graph, weights: Optional[Mapping[Node, float]]
) -> Set[Node]:
    nodes = canonical_order(graph.nodes())
    weight = {node: _weight_of(weights, node) for node in nodes}
    white: Set[Node] = set(nodes)
    chosen: Set[Node] = set()
    while white:
        best_node: Optional[Node] = None
        best_score = 0.0
        for node in nodes:
            if node in chosen:
                continue
            covered = len(_closed(graph, node) & white)
            if covered == 0:
                continue
            score = weight[node] / covered
            if best_node is None or score < best_score:
                best_node = node
                best_score = score
        if best_node is None:  # pragma: no cover - white nodes dominate themselves
            raise AssertionError("no candidate covers a white node")
        chosen.add(best_node)
        white -= _closed(graph, best_node)
    return chosen


def _greedy_mwds_vector(
    graph: Graph, weights: Optional[Mapping[Node, float]]
) -> Set[Node]:
    from repro.kernels._compat import require_numpy
    from repro.kernels.bfs import graph_to_csr

    np = require_numpy()
    node_list, heads, tails = graph_to_csr(graph)
    n = len(node_list)
    weight = np.array(
        [_weight_of(weights, node) for node in node_list], dtype=np.float64
    )
    run_start = np.searchsorted(heads, np.arange(n, dtype=np.int64))
    run_end = np.append(run_start[1:], heads.size)
    white = np.ones(n, dtype=np.float64)
    chosen = np.zeros(n, dtype=bool)
    chosen_nodes: Set[Node] = set()
    while True:
        remaining = float(white.sum())
        if remaining == 0.0:
            break
        # covered[v] = |N[v] ∩ white|, via one segmented sum over CSR.
        covered = white.copy()
        if heads.size:
            neighbor_white = np.add.reduceat(white[tails], run_start)
            neighbor_white[run_start == run_end] = 0.0
            covered += neighbor_white
        with np.errstate(divide="ignore"):
            score = np.where(covered > 0.0, weight / covered, np.inf)
        score[chosen] = np.inf
        pick = int(np.argmin(score))  # first minimum = canonical tie-break
        if not np.isfinite(score[pick]):  # pragma: no cover - see pure twin
            raise AssertionError("no candidate covers a white node")
        chosen[pick] = True
        chosen_nodes.add(node_list[pick])
        white[pick] = 0.0
        white[tails[run_start[pick] : run_end[pick]]] = 0.0
    return chosen_nodes


def two_hop_packing(
    graph: Graph, weights: Optional[Mapping[Node, float]] = None
) -> Set[Node]:
    """A maximal 2-hop-separated node set (2-hop Steiner terminals).

    Scans nodes by ascending weight (canonical on ties) and keeps any
    node at hop distance >= 3 from everything already kept.  Kept nodes
    have pairwise-disjoint closed neighborhoods, so every dominating
    set contains a distinct member per kept node:
    ``len(two_hop_packing(g))`` <= |MDS| <= |MWCDS| <= |MCDS|.
    """
    order = canonical_order(graph.nodes())
    if weights is not None:
        order.sort(key=lambda node: _weight_of(weights, node))
    blocked: Set[Node] = set()
    kept: Set[Node] = set()
    for node in order:
        if node in blocked:
            continue
        kept.add(node)
        closed = _closed(graph, node)
        blocked.update(closed)
        for neighbor in canonical_order(closed):
            blocked.update(graph.adjacency(neighbor))
    return kept


def packing_lower_bound(graph: Graph) -> int:
    """|two_hop_packing| — an admissible lower bound on |MDS|."""
    return len(two_hop_packing(graph))


def connect_weakly(graph: Graph, dominators: Iterable[Node]) -> Set[Node]:
    """Grow a dominating set into a WCDS by 2-hop Steiner connection.

    While the weak components (under the shared-neighbor relation) are
    plural, merge the two closest ones by buying every other interior
    node of a shortest connecting path — ``floor((d-1)/2)`` connectors
    for a hop distance of ``d``.  The result weakly connects because
    consecutive bought nodes (and the endpoints) sit within two hops of
    each other.
    """
    members = set(dominators)
    if not members:
        raise ValueError("cannot weakly connect an empty dominating set")
    while True:
        components = _weak_components(graph, members)
        if len(components) <= 1:
            return members
        path = _closest_component_path(graph, components)
        # Buy interiors at even positions: each is two hops from the
        # previous purchase and at most two from the far endpoint.
        members.update(path[2:-1:2])


def greedy_mwds_wcds(
    graph: Graph,
    weights: Optional[Mapping[Node, float]] = None,
    *,
    method: str = "auto",
) -> Set[Node]:
    """Greedy MWDS + 2-hop Steiner connection: a scalable WCDS.

    The composed upper bound on |MWCDS| used by the ratio benchmarks
    where the exact oracle is out of reach.  Raises ``ValueError`` on
    empty or disconnected graphs (like every WCDS construction).
    """
    if graph.num_nodes == 0:
        raise ValueError("WCDS of an empty graph is undefined")
    if not is_connected(graph):
        raise ValueError("greedy WCDS requires a connected graph")
    wcds = connect_weakly(graph, greedy_mwds(graph, weights, method=method))
    if not is_dominating_set(graph, wcds):  # pragma: no cover - invariant
        raise AssertionError("greedy MWDS lost domination while connecting")
    if not is_connected(weakly_induced_subgraph(graph, wcds)):
        raise AssertionError("2-hop Steiner connection left the WCDS split")
    return wcds


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _weight_of(weights: Optional[Mapping[Node, float]], node: Node) -> float:
    if weights is None:
        return 1.0
    value = float(weights[node])
    if value <= 0.0:
        raise ValueError(f"node weight must be positive, got {value} for {node!r}")
    return value


def _closed(graph: Graph, node: Node) -> Set[Node]:
    closed = set(graph.adjacency(node))
    closed.add(node)
    return closed


def _weak_components(graph: Graph, members: Set[Node]) -> List[Set[Node]]:
    """Components of ``members`` under 'within two hops' reachability."""
    components: List[Set[Node]] = []
    unvisited = set(members)
    while unvisited:
        seed = canonical_order(unvisited)[0]
        component = {seed}
        frontier = [seed]
        while frontier:
            current = frontier.pop()
            two_hop: Set[Node] = set(graph.adjacency(current))
            for neighbor in canonical_order(graph.adjacency(current)):
                two_hop.update(graph.adjacency(neighbor))
            for other in canonical_order(two_hop & (unvisited - component)):
                component.add(other)
                frontier.append(other)
        components.append(component)
        unvisited -= component
    return components


def _closest_component_path(
    graph: Graph, components: List[Set[Node]]
) -> List[Node]:
    """Shortest path between the first component and any other."""
    source = components[0]
    owner: Dict[Node, int] = {}
    for index, component in enumerate(components):
        for node in component:
            owner[node] = index
    parents: Dict[Node, Optional[Node]] = {
        node: None for node in canonical_order(source)
    }
    frontier: List[Node] = canonical_order(source)
    while frontier:
        next_frontier: List[Node] = []
        for current in frontier:
            for neighbor in canonical_order(graph.adjacency(current)):
                if neighbor in parents:
                    continue
                parents[neighbor] = current
                if owner.get(neighbor, 0) != 0:
                    return _unwind(parents, neighbor)
                next_frontier.append(neighbor)
        frontier = next_frontier
    raise ValueError("components lie in different connected pieces of the graph")


def _unwind(parents: Dict[Node, Optional[Node]], last: Node) -> List[Node]:
    path: List[Node] = [last]
    step: Optional[Node] = parents[last]
    while step is not None:
        path.append(step)
        step = parents[step]
    path.reverse()
    return path


__all__ = [
    "connect_weakly",
    "greedy_mwds",
    "greedy_mwds_wcds",
    "packing_lower_bound",
    "two_hop_packing",
]
