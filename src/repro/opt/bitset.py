"""Integer-bitset graph snapshot for the optimality search engine.

The branch & bound enumerates subsets of nodes millions of times;
Python's arbitrary-precision integers make an n-node subset a single
word-packed value with O(n/64) union/intersection and hardware popcount
— an order of magnitude faster than ``set`` operations and hashable for
the transposition table.  Node index ``i`` is position ``i`` of
:func:`repro.graphs.graph.canonical_order`, so ascending bit order *is*
canonical order and every loop below is deterministic by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, List, Set, Tuple

from repro.graphs.graph import Graph, canonical_order

Node = Hashable


def iter_bits(mask: int) -> "List[int]":
    """The set bit positions of ``mask``, ascending (= canonical order)."""
    out: List[int] = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out


def popcount(mask: int) -> int:
    """Number of set bits."""
    return bin(mask).count("1")


@dataclass(frozen=True)
class BitsetGraph:
    """A graph frozen into bitmask adjacency, indexed canonically."""

    nodes: Tuple[Node, ...]
    #: ``closed[i]`` — the closed neighborhood N[i] as a bitmask.
    closed: Tuple[int, ...]
    #: ``closed2[i]`` — nodes within two hops of ``i`` (including it).
    closed2: Tuple[int, ...]
    #: All ``n`` low bits set.
    full: int
    #: ``distances[i][j]`` — hop distance, -1 when unreachable.
    distances: Tuple[Tuple[int, ...], ...] = field(repr=False)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @classmethod
    def from_graph(cls, graph: Graph) -> "BitsetGraph":
        nodes = tuple(canonical_order(graph.nodes()))
        index = {node: i for i, node in enumerate(nodes)}
        closed: List[int] = []
        for i, node in enumerate(nodes):
            mask = 1 << i
            for neighbor in graph.adjacency(node):
                mask |= 1 << index[neighbor]
            closed.append(mask)
        closed2: List[int] = []
        for i in range(len(nodes)):
            mask = closed[i]
            for j in iter_bits(closed[i]):
                mask |= closed[j]
            closed2.append(mask)
        distances = tuple(
            tuple(row) for row in _hop_distances(closed, len(nodes))
        )
        return cls(
            nodes=nodes,
            closed=tuple(closed),
            closed2=tuple(closed2),
            full=(1 << len(nodes)) - 1,
            distances=distances,
        )

    def mask_of(self, members: Iterable[Node]) -> int:
        """The bitmask of a node collection."""
        index = {node: i for i, node in enumerate(self.nodes)}
        mask = 0
        for node in members:
            mask |= 1 << index[node]
        return mask

    def members(self, mask: int) -> Set[Node]:
        """The node set a bitmask denotes."""
        return {self.nodes[i] for i in iter_bits(mask)}


def _hop_distances(closed: List[int], n: int) -> List[List[int]]:
    """All-pairs hop distances by frontier BFS over bitmasks."""
    table: List[List[int]] = []
    for source in range(n):
        dist = [-1] * n
        dist[source] = 0
        reached = 1 << source
        frontier = 1 << source
        level = 0
        while frontier:
            level += 1
            expanded = 0
            for i in iter_bits(frontier):
                expanded |= closed[i]
            fresh = expanded & ~reached
            for j in iter_bits(fresh):
                dist[j] = level
            reached |= fresh
            frontier = fresh
        table.append(dist)
    return table
