"""scipy availability gate for the LP-strengthened optimality oracle.

Mirrors ``repro.kernels._compat``: the import is probed exactly once
here, every LP entry point routes through :func:`require_scipy`, and
the rest of ``repro.opt`` keeps working (falling back to the purely
combinatorial pruning bounds) when scipy is missing.
"""

from __future__ import annotations

from typing import Any

try:  # pragma: no cover - exercised implicitly on import
    import scipy.optimize  # noqa: F401

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - container always ships scipy
    HAVE_SCIPY = False


class LPUnavailableError(RuntimeError):
    """An LP bound was requested but scipy is not importable."""


def require_scipy() -> Any:
    """Return ``scipy.optimize`` or raise :class:`LPUnavailableError`."""
    if not HAVE_SCIPY:
        raise LPUnavailableError(
            "the LP-strengthened bounds need scipy; install it "
            "(pip install 'repro[opt]') or run with lp='off'"
        )
    import scipy.optimize

    return scipy.optimize


def resolve_lp(lp: str) -> bool:
    """Resolve an ``{"on", "off", "auto"}`` switch to a concrete choice.

    ``auto`` enables LP pruning exactly when scipy is importable;
    ``on`` insists (raising :class:`LPUnavailableError` when it is
    missing) and ``off`` always uses the combinatorial bounds alone —
    the search result is bit-identical either way, only the pruning
    power changes.
    """
    if lp == "off":
        return False
    if lp == "on":
        require_scipy()
        return True
    if lp != "auto":
        raise ValueError(
            f"unknown lp mode {lp!r} (expected 'on', 'off', or 'auto')"
        )
    return HAVE_SCIPY
