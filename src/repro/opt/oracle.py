"""Certified optima: the one front door to the oracle hierarchy.

:func:`certified_optimum` picks the strongest engine the instance size
allows and always returns an :class:`OptimalityCertificate` whose
``lower <= opt <= upper`` sandwich is *proven*, never estimated:

* n <= :data:`BASELINE_ORACLE_NODES` — the combinatorial oracle in
  :mod:`repro.baselines.exact` (independent of every bound here);
* n <= ``exact_nodes`` — the LP-strengthened branch & bound of
  :mod:`repro.opt.exact`;
* beyond — the sandwich: ``max(2-hop packing, ceil(LP root))`` below,
  the greedy-MWDS / 2-hop-Steiner heuristics above.

A certificate is *certified* when the sandwich closes
(``lower == upper``); ratio benchmarks divide measured backbone sizes
by ``lower`` to get a conservative (never flattering) empirical ratio.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Hashable, Optional

from repro.graphs.graph import Graph
from repro.opt._scipy import resolve_lp
from repro.opt.exact import (
    PROBLEMS,
    SearchLimitExceeded,
    SearchStats,
    opt_minimum,
)
from repro.opt.heuristics import (
    greedy_mwds,
    greedy_mwds_wcds,
    two_hop_packing,
)
from repro.opt.lp import lp_domination_bound, lp_lower_bound

Node = Hashable

#: Below this size the pure combinatorial oracle of
#: ``repro.baselines.exact`` is used — it is the independent
#: exact-equality reference the LP engine is validated against.
BASELINE_ORACLE_NODES = 18

#: Default exact-oracle ceiling for the LP-pruned branch & bound.
DEFAULT_EXACT_NODES = 60

#: Node-expansion budget guarding CI runs against pathological
#: instances; generous for the benchmark densities.
DEFAULT_NODE_LIMIT = 5_000_000


@dataclass(frozen=True)
class OptimalityCertificate:
    """A proven bound sandwich for one problem on one graph."""

    problem: str
    num_nodes: int
    lower: int
    upper: int
    method: str
    #: An optimal witness set when certified, else the best upper
    #: witness available (a valid dominating/WCDS/CDS set).
    witness: FrozenSet[Node] = frozenset()
    lower_method: str = ""
    upper_method: str = ""
    stats: Optional[SearchStats] = None

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ValueError(
                f"certificate inverted: lower {self.lower} > upper {self.upper}"
            )

    @property
    def certified(self) -> bool:
        """Whether the sandwich closed (the optimum is known exactly)."""
        return self.lower == self.upper

    @property
    def optimum(self) -> Optional[int]:
        """The exact optimum, or None when only the sandwich is known."""
        return self.lower if self.certified else None

    def ratio_of(self, size: int) -> float:
        """Conservative empirical ratio of a measured backbone size."""
        return size / self.lower

    def to_dict(self) -> Dict[str, Any]:
        return {
            "problem": self.problem,
            "num_nodes": self.num_nodes,
            "lower": self.lower,
            "upper": self.upper,
            "certified": self.certified,
            "optimum": self.optimum,
            "method": self.method,
            "lower_method": self.lower_method,
            "upper_method": self.upper_method,
        }


def certified_optimum(
    graph: Graph,
    problem: str = "wcds",
    *,
    exact_nodes: int = DEFAULT_EXACT_NODES,
    lp: str = "auto",
    node_limit: Optional[int] = DEFAULT_NODE_LIMIT,
    registry: Any = None,
    tracer: Any = None,
) -> OptimalityCertificate:
    """The strongest certificate the instance size allows.

    ``exact_nodes`` caps the LP-pruned branch & bound; above it (or
    when ``node_limit`` expansions run out) the heuristic sandwich is
    returned instead of an exact optimum.  ``registry``/``tracer`` are
    optional :mod:`repro.obs` handles mirroring the search counters.
    """
    if problem not in PROBLEMS:
        raise ValueError(f"unknown problem {problem!r}; expected one of {PROBLEMS}")
    with _tracer_of(tracer).span(
        "opt.certify", problem=problem, n=graph.num_nodes
    ):
        certificate = _certify(graph, problem, exact_nodes, lp, node_limit)
    _record(registry, certificate)
    return certificate


def _certify(
    graph: Graph,
    problem: str,
    exact_nodes: int,
    lp: str,
    node_limit: Optional[int],
) -> OptimalityCertificate:
    n = graph.num_nodes
    if n <= BASELINE_ORACLE_NODES:
        witness = _baseline_exact(graph, problem)
        return OptimalityCertificate(
            problem=problem,
            num_nodes=n,
            lower=len(witness),
            upper=len(witness),
            method="baseline-bb",
            witness=frozenset(witness),
            lower_method="baseline-bb",
            upper_method="baseline-bb",
        )
    if n <= exact_nodes:
        stats = SearchStats()
        try:
            witness = opt_minimum(
                graph, problem, lp=lp, node_limit=node_limit, stats=stats
            )
        except SearchLimitExceeded:
            return _sandwich(graph, problem, lp, stats)
        return OptimalityCertificate(
            problem=problem,
            num_nodes=n,
            lower=len(witness),
            upper=len(witness),
            method="lp-bb",
            witness=frozenset(witness),
            lower_method="lp-bb",
            upper_method="lp-bb",
            stats=stats,
        )
    return _sandwich(graph, problem, lp, None)


def _sandwich(
    graph: Graph,
    problem: str,
    lp: str,
    stats: Optional[SearchStats],
) -> OptimalityCertificate:
    packing = len(two_hop_packing(graph))
    lower = packing
    lower_method = "2hop-packing"
    if resolve_lp(lp):
        value = lp_domination_bound(graph)
        if not math.isinf(value):
            lp_bound = lp_lower_bound(value)
            if lp_bound > lower:
                lower = lp_bound
                lower_method = "lp-root"
    if problem == "mds":
        witness = greedy_mwds(graph)
        upper_method = "greedy-mwds"
    elif problem == "cds":
        # 2-hop Steiner connection is only weakly connected; the CDS
        # upper witness must induce a connected subgraph.
        from repro.baselines.mis_cds import mis_tree_cds

        witness = mis_tree_cds(graph)
        upper_method = "mis-tree"
    else:
        witness = greedy_mwds_wcds(graph)
        upper_method = "greedy-mwds+2hop-steiner"
    upper = len(witness)
    return OptimalityCertificate(
        problem=problem,
        num_nodes=graph.num_nodes,
        lower=min(lower, upper),
        upper=upper,
        method="sandwich",
        witness=frozenset(witness),
        lower_method=lower_method,
        upper_method=upper_method,
        stats=stats,
    )


def _baseline_exact(graph: Graph, problem: str) -> "set[Node]":
    from repro.baselines.exact import (
        exact_minimum_cds,
        exact_minimum_dominating_set,
        exact_minimum_wcds,
    )

    if problem == "mds":
        return exact_minimum_dominating_set(graph)
    if problem == "wcds":
        return exact_minimum_wcds(graph)
    return exact_minimum_cds(graph)


def _record(registry: Any, certificate: OptimalityCertificate) -> None:
    if registry is None:
        return
    labels = {"problem": certificate.problem}
    registry.counter(
        "opt_certificates_total", "optimality certificates issued", **labels
    ).inc()
    stats = certificate.stats
    if stats is None:
        return
    registry.counter(
        "opt_search_nodes_total", "branch & bound nodes expanded", **labels
    ).inc(stats.nodes_expanded)
    registry.counter(
        "opt_lp_solves_total", "LP relaxations solved", **labels
    ).inc(stats.lp_calls)
    for kind, count in sorted(stats.prune_counts.items()):
        registry.counter(
            "opt_prunes_total", "admissible-bound prunes",
            problem=certificate.problem, kind=kind,
        ).inc(count)


def _tracer_of(tracer: Any) -> Any:
    if tracer is None:
        from repro.obs.tracing import NullTracer

        return NullTracer()
    return tracer
