"""Empirical approximation ratios against certified optima.

The paper proves Algorithm I <= 5·opt (Theorem 5 via Lemma 7) and
Algorithm II <= 240·opt (Theorem 10) — the latter wildly loose.  This
module measures what the constants actually are: build the backbone
across protocol seeds on a fixed topology (via the
:mod:`repro.sim.fleet` runner, so sweeps parallelize over cores), and
divide each measured size by the certificate's proven lower bound,
giving a ratio that is conservative — never flattering — even when the
optimum is only sandwiched.

:class:`RatioTrial` is module-level and picklable, as the fleet's spawn
workers require.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.graphs.udg import UnitDiskGraph
from repro.opt.oracle import OptimalityCertificate, certified_optimum
from repro.wcds.bounds import ALGORITHM1_RATIO, ALGORITHM2_RATIO

#: Theorem envelopes per registry algorithm; anything unlisted is
#: compared against the looser Theorem 10 constant.
THEOREM_ENVELOPES: Mapping[str, int] = {
    "algorithm1": ALGORITHM1_RATIO,
    "algorithm1-centralized": ALGORITHM1_RATIO,
    "algorithm2": ALGORITHM2_RATIO,
    "algorithm2-centralized": ALGORITHM2_RATIO,
}

#: The default sweep: the paper's two distributed constructions.
DEFAULT_ALGORITHMS = ("algorithm1", "algorithm2")


@dataclass(frozen=True)
class RatioTrial:
    """One fleet trial: build ``algorithm``'s backbone for one seed."""

    algorithm: str = "algorithm2"
    engine: str = "auto"

    def __call__(
        self, graph: UnitDiskGraph, seed: int
    ) -> Mapping[str, float]:
        from repro.backbone import build
        from repro.sim.config import SimConfig

        algo = _registry_get(self.algorithm)
        if algo.distributed:
            result = build(
                self.algorithm, graph,
                sim=SimConfig(seed=seed, engine=self.engine),
            )
        else:
            result = build(self.algorithm, graph)
        return {"size": float(len(result.dominators))}


@dataclass(frozen=True)
class AlgorithmRatios:
    """Measured sizes and ratios of one algorithm over a seed sweep."""

    algorithm: str
    sizes: Sequence[int]
    certificate: OptimalityCertificate
    envelope: int

    @property
    def min_size(self) -> int:
        return min(self.sizes)

    @property
    def max_size(self) -> int:
        return max(self.sizes)

    @property
    def mean_size(self) -> float:
        return sum(self.sizes) / len(self.sizes)

    @property
    def max_ratio(self) -> float:
        return self.certificate.ratio_of(self.max_size)

    @property
    def mean_ratio(self) -> float:
        return self.mean_size / self.certificate.lower

    @property
    def within_envelope(self) -> bool:
        return self.max_ratio <= float(self.envelope)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "trials": len(self.sizes),
            "min_size": self.min_size,
            "mean_size": round(self.mean_size, 3),
            "max_size": self.max_size,
            "mean_ratio": round(self.mean_ratio, 4),
            "max_ratio": round(self.max_ratio, 4),
            "envelope": self.envelope,
            "within_envelope": self.within_envelope,
        }


def measure_ratios(
    graph: UnitDiskGraph,
    seeds: Sequence[int],
    *,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    problem: str = "wcds",
    certificate: Optional[OptimalityCertificate] = None,
    exact_nodes: Optional[int] = None,
    lp: str = "auto",
    workers: Optional[int] = None,
    engine: str = "auto",
    registry: Any = None,
    tracer: Any = None,
) -> Dict[str, AlgorithmRatios]:
    """Sweep ``algorithms`` over protocol ``seeds`` and rate each
    against one certificate for the shared topology.

    The certificate is computed once in the parent (pass one in to
    reuse across calls); only the cheap per-seed builds fan out to the
    fleet workers.  ``workers=0`` runs inline.
    """
    if not seeds:
        raise ValueError("no seeds given")
    if certificate is None:
        kwargs: Dict[str, Any] = {"lp": lp, "registry": registry, "tracer": tracer}
        if exact_nodes is not None:
            kwargs["exact_nodes"] = exact_nodes
        certificate = certified_optimum(graph, problem, **kwargs)
    results: Dict[str, AlgorithmRatios] = {}
    with _tracer_of(tracer).span(
        "opt.ratio_sweep", algorithms=len(algorithms), seeds=len(seeds)
    ):
        for name in algorithms:
            sizes = _sweep_sizes(
                graph, name, seeds, workers=workers, engine=engine,
                registry=registry,
            )
            results[name] = AlgorithmRatios(
                algorithm=name,
                sizes=sizes,
                certificate=certificate,
                envelope=THEOREM_ENVELOPES.get(name, ALGORITHM2_RATIO),
            )
    return results


def _sweep_sizes(
    graph: UnitDiskGraph,
    algorithm: str,
    seeds: Sequence[int],
    *,
    workers: Optional[int],
    engine: str,
    registry: Any,
) -> List[int]:
    algo = _registry_get(algorithm)
    if not algo.distributed:
        # Deterministic: one build covers every seed.
        trial = RatioTrial(algorithm=algorithm, engine=engine)
        size = int(trial(graph, 0)["size"])
        return [size for _ in seeds]
    from repro.sim.fleet import run_fleet

    rows = run_fleet(
        graph,
        RatioTrial(algorithm=algorithm, engine=engine),
        list(seeds),
        workers=workers,
        registry=registry,
    )
    return [int(row["size"]) for row in rows]


def ratio_report(
    graph: UnitDiskGraph,
    results: Mapping[str, AlgorithmRatios],
) -> Dict[str, Any]:
    """A JSON-ready ratio table (the CI artifact format)."""
    certificates = {
        ratios.certificate.problem: ratios.certificate.to_dict()
        for ratios in results.values()
    }
    return {
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "certificates": certificates,
        "algorithms": [
            results[name].to_dict() for name in sorted(results)
        ],
    }


def _registry_get(name: str) -> Any:
    from repro.backbone import get

    return get(name)


def _tracer_of(tracer: Any) -> Any:
    if tracer is None:
        from repro.obs.tracing import NullTracer

        return NullTracer()
    return tracer
