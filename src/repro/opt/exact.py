"""LP-strengthened branch & bound for minimum MDS / WCDS / CDS.

Same contract as :mod:`repro.baselines.exact` — iterative deepening
over the target size ``k``, branching on the closed neighborhood of an
undominated pivot — but engineered for n ≈ 60–100 on unit-disk graphs
instead of n ≈ 18:

* subsets are integer bitmasks (:mod:`repro.opt.bitset`), making node
  expansion and the transposition table an order of magnitude cheaper;
* four admissible pruning bounds layer on top of the branching:

  1. **packing** — a greedily-built 2-hop-separated subset of the
     undominated nodes has pairwise-disjoint closed neighborhoods, so
     each member needs its own new dominator;
  2. **coverage** — no remaining candidate covers more than
     ``max_v |N[v] ∩ undominated|`` nodes (the tightened form of the
     baseline oracle's ``Δ+1`` bound);
  3. **connectivity** — with ``c >= 2`` weakly-induced components,
     every component needs a *new* node within reach (two hops for
     WCDS, one for CDS), one node touches at most ``t_max``
     components, and a component at hop distance ``d`` from the rest
     needs ``floor((d-1)/2)`` (WCDS) / ``d-1`` (CDS) bridge nodes;
  4. **LP** — the fractional optimum of the restricted domination LP
     with component-touch rows (:mod:`repro.opt.lp`), solved at
     shallow depth and at deep nodes where the combinatorial bounds
     are within one of pruning already;

* once every node is dominated, glue candidates are restricted to the
  reach of the current selection — complete, because the square graph
  (WCDS) or induced graph (CDS) of any feasible superset is connected.

The pruning bounds never exclude a feasible completion and never
reorder branching, so the returned set is **bit-identical** with and
without LP pruning (and with scipy absent); only the node count
changes.  :mod:`repro.baselines.exact` remains the independent
exact-equality oracle for n <= 18.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.graphs.graph import Graph
from repro.graphs.traversal import is_connected
from repro.opt._scipy import resolve_lp
from repro.opt.bitset import BitsetGraph, iter_bits, popcount
from repro.opt.lp import (
    LP_TOLERANCE,
    fractional_domination,
    lp_lower_bound,
)

Node = Hashable

#: The three covered problems, in oracle-hierarchy order:
#: |MDS| <= |MWCDS| <= |MCDS|.
PROBLEMS: Tuple[str, ...] = ("mds", "wcds", "cds")

#: LP pruning fires whenever the search depth is at most this.
_LP_SHALLOW_DEPTH = 2
#: ... or when the remaining budget is at most this and a combinatorial
#: bound already came within one of pruning (the marginal frontier,
#: where fractional tightening pays for the solver call).
_LP_DEEP_BUDGET = 4


class SearchLimitExceeded(RuntimeError):
    """The node-expansion budget ran out before the search finished."""


@dataclass
class SearchStats:
    """Instrumentation record of one branch & bound run."""

    problem: str = ""
    num_nodes: int = 0
    nodes_expanded: int = 0
    lp_calls: int = 0
    lp_prunes: int = 0
    packing_prunes: int = 0
    coverage_prunes: int = 0
    connectivity_prunes: int = 0
    deepening_steps: int = 0
    root_lp_value: Optional[float] = None
    optimum: Optional[int] = None
    prune_counts: Dict[str, int] = field(default_factory=dict)

    def finalize(self) -> None:
        self.prune_counts = {
            "lp": self.lp_prunes,
            "packing": self.packing_prunes,
            "coverage": self.coverage_prunes,
            "connectivity": self.connectivity_prunes,
        }


def opt_minimum_dominating_set(
    graph: Graph,
    *,
    max_size: Optional[int] = None,
    lp: str = "auto",
    node_limit: Optional[int] = None,
    stats: Optional[SearchStats] = None,
) -> Set[Node]:
    """A minimum dominating set (no connectivity requirement)."""
    if graph.num_nodes == 0:
        return set()
    return _solve(graph, "mds", max_size, lp, node_limit, stats)


def opt_minimum_wcds(
    graph: Graph,
    *,
    max_size: Optional[int] = None,
    lp: str = "auto",
    node_limit: Optional[int] = None,
    stats: Optional[SearchStats] = None,
) -> Set[Node]:
    """A minimum weakly-connected dominating set of a connected graph."""
    _require_connected(graph)
    return _solve(graph, "wcds", max_size, lp, node_limit, stats)


def opt_minimum_cds(
    graph: Graph,
    *,
    max_size: Optional[int] = None,
    lp: str = "auto",
    node_limit: Optional[int] = None,
    stats: Optional[SearchStats] = None,
) -> Set[Node]:
    """A minimum connected dominating set of a connected graph."""
    _require_connected(graph)
    return _solve(graph, "cds", max_size, lp, node_limit, stats)


def opt_minimum(
    graph: Graph,
    problem: str,
    *,
    max_size: Optional[int] = None,
    lp: str = "auto",
    node_limit: Optional[int] = None,
    stats: Optional[SearchStats] = None,
) -> Set[Node]:
    """Dispatch by problem name (one of :data:`PROBLEMS`)."""
    if problem == "mds":
        return opt_minimum_dominating_set(
            graph, max_size=max_size, lp=lp, node_limit=node_limit, stats=stats
        )
    if problem == "wcds":
        return opt_minimum_wcds(
            graph, max_size=max_size, lp=lp, node_limit=node_limit, stats=stats
        )
    if problem == "cds":
        return opt_minimum_cds(
            graph, max_size=max_size, lp=lp, node_limit=node_limit, stats=stats
        )
    raise ValueError(f"unknown problem {problem!r}; expected one of {PROBLEMS}")


def _require_connected(graph: Graph) -> None:
    if graph.num_nodes == 0:
        raise ValueError("minimum set of an empty graph is undefined")
    if not is_connected(graph):
        raise ValueError("the graph must be connected")


def _solve(
    graph: Graph,
    problem: str,
    max_size: Optional[int],
    lp: str,
    node_limit: Optional[int],
    stats: Optional[SearchStats],
) -> Set[Node]:
    bitset_graph = BitsetGraph.from_graph(graph)
    search = _Search(
        bitset_graph,
        problem,
        lp_enabled=resolve_lp(lp),
        node_limit=node_limit,
        stats=stats if stats is not None else SearchStats(),
    )
    mask = search.solve(max_size)
    return bitset_graph.members(mask)


class _Search:
    """One branch & bound instance over a frozen bitset graph."""

    def __init__(
        self,
        bitset_graph: BitsetGraph,
        problem: str,
        *,
        lp_enabled: bool,
        node_limit: Optional[int],
        stats: SearchStats,
    ) -> None:
        self.graph = bitset_graph
        self.problem = problem
        self.lp_enabled = lp_enabled
        self.node_limit = node_limit
        self.stats = stats
        stats.problem = problem
        stats.num_nodes = bitset_graph.num_nodes
        self.closed = bitset_graph.closed
        # "Reach" is the relation under which the selection must end up
        # connected: two hops (shared neighbor = black path) for WCDS,
        # adjacency for CDS, irrelevant for the plain MDS.
        self.reach = (
            bitset_graph.closed2 if problem == "wcds" else bitset_graph.closed
        )
        self.full = bitset_graph.full
        self.n = bitset_graph.num_nodes

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def solve(self, max_size: Optional[int]) -> int:
        limit = max_size if max_size is not None else self.n
        start = 1
        if self.lp_enabled:
            value = self._lp(self.full, 0, ())
            self.stats.root_lp_value = value
            if not math.isinf(value):
                start = max(1, lp_lower_bound(value))
        for budget in range(start, limit + 1):
            self.stats.deepening_steps += 1
            found = self._search(0, 0, budget, set(), 0)
            if found is not None:
                self.stats.optimum = popcount(found)
                self.stats.finalize()
                return found
        self.stats.finalize()
        raise RuntimeError(f"no feasible set of size <= {limit} exists")

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _search(
        self,
        selected: int,
        dominated: int,
        budget: int,
        seen: Set[int],
        depth: int,
    ) -> Optional[int]:
        if selected in seen:
            return None
        seen.add(selected)
        self.stats.nodes_expanded += 1
        if (
            self.node_limit is not None
            and self.stats.nodes_expanded > self.node_limit
        ):
            raise SearchLimitExceeded(
                f"{self.problem} search exceeded {self.node_limit} node "
                f"expansions at n={self.n}"
            )
        undominated = self.full & ~dominated
        components: List[int] = []
        connectivity_floor = 0
        if self.problem != "mds" and selected:
            components = self._components(selected)
            if len(components) > 1:
                connectivity_floor = self._connectivity_bound(
                    selected, components
                )
                if connectivity_floor > budget:
                    self.stats.connectivity_prunes += 1
                    return None
        if not undominated:
            if selected and len(components) <= 1:
                return selected
            return self._glue(selected, dominated, budget, seen, depth)
        if budget == 0:
            return None
        packing = self._packing_bound(undominated)
        if packing > budget:
            self.stats.packing_prunes += 1
            return None
        best_cover = self._best_coverage(selected, undominated)
        if budget * best_cover < popcount(undominated):
            self.stats.coverage_prunes += 1
            return None
        if self.lp_enabled and (
            depth <= _LP_SHALLOW_DEPTH
            or (
                budget <= _LP_DEEP_BUDGET
                and max(packing, connectivity_floor) >= budget - 1
            )
        ):
            touch_rows: Sequence[int] = (
                self._touch_rows(selected, components)
                if len(components) > 1
                else ()
            )
            value = self._lp(undominated, selected, touch_rows)
            if math.isinf(value) or budget < lp_lower_bound(value):
                self.stats.lp_prunes += 1
                return None
        pivot = self._pivot(undominated)
        for candidate in iter_bits(self.closed[pivot] & ~selected):
            found = self._search(
                selected | (1 << candidate),
                dominated | self.closed[candidate],
                budget - 1,
                seen,
                depth + 1,
            )
            if found is not None:
                return found
        return None

    def _glue(
        self,
        selected: int,
        dominated: int,
        budget: int,
        seen: Set[int],
        depth: int,
    ) -> Optional[int]:
        """Dominating but disconnected: spend budget on glue nodes.

        Candidates are restricted to the reach of the current selection
        — complete, because the reach graph of any feasible superset is
        connected, so its members can always be ordered with each new
        node within reach of the ones before it.
        """
        if budget == 0 or not selected:
            return None
        reach_mask = 0
        for i in iter_bits(selected):
            reach_mask |= self.reach[i]
        for candidate in iter_bits(reach_mask & ~selected):
            found = self._search(
                selected | (1 << candidate),
                dominated | self.closed[candidate],
                budget - 1,
                seen,
                depth + 1,
            )
            if found is not None:
                return found
        return None

    # ------------------------------------------------------------------
    # Bounds (all admissible: they never exclude a feasible completion)
    # ------------------------------------------------------------------
    def _components(self, selected: int) -> List[int]:
        """Connected components of the selection under the reach
        relation, each as a bitmask."""
        components: List[int] = []
        rest = selected
        while rest:
            seed = rest & -rest
            component = seed
            frontier = seed
            while frontier:
                expanded = 0
                for i in iter_bits(frontier):
                    expanded |= self.reach[i]
                fresh = expanded & selected & ~component
                component |= fresh
                frontier = fresh
            components.append(component)
            rest &= ~component
        return components

    def _connectivity_bound(self, selected: int, components: List[int]) -> int:
        """Min new nodes any weakly/strongly connected completion needs."""
        touch_rows = self._touch_rows(selected, components)
        candidates = self.full & ~selected
        t_max = 1
        for v in iter_bits(candidates):
            bit = 1 << v
            touches = sum(1 for row in touch_rows if row & bit)
            if touches > t_max:
                t_max = touches
        cover = -(-len(components) // t_max)
        floor = 0
        distances = self.graph.distances
        for component in components:
            others = selected & ~component
            nearest = -1
            for i in iter_bits(component):
                row = distances[i]
                for j in iter_bits(others):
                    d = row[j]
                    if d >= 0 and (nearest < 0 or d < nearest):
                        nearest = d
            if nearest >= 0:
                need = (
                    (nearest - 1) // 2 if self.problem == "wcds" else nearest - 1
                )
                if need > floor:
                    floor = need
        return max(cover, floor, 1)

    def _touch_rows(self, selected: int, components: List[int]) -> List[int]:
        """Per-component masks of new nodes within reach: any feasible
        completion picks at least one from each."""
        rows: List[int] = []
        for component in components:
            reach_mask = 0
            for i in iter_bits(component):
                reach_mask |= self.reach[i]
            rows.append(reach_mask & ~selected)
        return rows

    def _packing_bound(self, undominated: int) -> int:
        """Greedy 2-hop-separated packing of undominated nodes: their
        closed neighborhoods are disjoint, so each needs its own new
        dominator."""
        closed2 = self.graph.closed2
        blocked = 0
        count = 0
        mask = undominated
        while mask:
            low = mask & -mask
            i = low.bit_length() - 1
            mask ^= low
            if not (blocked & low):
                blocked |= closed2[i]
                count += 1
        return count

    def _best_coverage(self, selected: int, undominated: int) -> int:
        """Max undominated coverage of any remaining candidate — the
        tightened, locally-restricted form of the Δ+1 bound."""
        best = 0
        for i in iter_bits(self.full & ~selected):
            cover = popcount(self.closed[i] & undominated)
            if cover > best:
                best = cover
        return best

    def _pivot(self, undominated: int) -> int:
        """The undominated node with the fewest closed neighbors (ties
        to the canonically-first, since iteration is ascending)."""
        pivot = -1
        best = self.n + 2
        for i in iter_bits(undominated):
            size = popcount(self.closed[i])
            if size < best:
                best = size
                pivot = i
        return pivot

    def _lp(
        self, undominated: int, selected: int, touch_rows: Sequence[int]
    ) -> float:
        self.stats.lp_calls += 1
        return fractional_domination(
            self.graph,
            undominated=undominated,
            banned=selected,
            touch_rows=touch_rows,
        )


#: Re-exported so callers can interpret LP values consistently.
__all__ = [
    "LP_TOLERANCE",
    "PROBLEMS",
    "SearchLimitExceeded",
    "SearchStats",
    "opt_minimum",
    "opt_minimum_cds",
    "opt_minimum_dominating_set",
    "opt_minimum_wcds",
]
