"""LP relaxations of minimum (weakly connected) domination.

The integer program for a minimum dominating set is the classic set
cover over closed neighborhoods::

    min  sum_v x_v
    s.t. sum_{v in N[u]} x_v >= 1   for every node u
         0 <= x_v <= 1

Its fractional optimum is an *admissible* lower bound for |MDS| — and,
since every WCDS and CDS is in particular dominating, for |MWCDS| and
|MCDS| too (Guha–Khuller-style set-cover bounding).  The branch & bound
in :mod:`repro.opt.exact` re-solves the relaxation at search nodes,
restricted to the still-undominated rows and the not-yet-banned
columns, and strengthened with *component-touch* rows: once a partial
solution has ``c >= 2`` weakly-induced components, any completion must
place at least one **new** node within reach of each component (within
two hops for WCDS, adjacent for CDS), which is one extra covering row
per component.

Everything here is expressed over :class:`repro.opt.bitset.BitsetGraph`
masks; :func:`lp_domination_bound` is the graph-level convenience used
by tests and docs.  scipy is imported lazily through
:func:`repro.opt._scipy.require_scipy` so the module imports cleanly
without it.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional, Sequence

from repro.graphs.graph import Graph
from repro.opt._scipy import require_scipy
from repro.opt.bitset import BitsetGraph, iter_bits

#: Fractional slack below which an LP value is trusted as a bound:
#: ``ceil(value - LP_TOLERANCE)`` never over-prunes on solver noise.
LP_TOLERANCE = 1e-6

#: linprog failure (infeasible restricted LP = no completion exists).
INFEASIBLE = math.inf


def fractional_domination(
    bitset_graph: BitsetGraph,
    undominated: Optional[int] = None,
    banned: int = 0,
    touch_rows: Sequence[int] = (),
) -> float:
    """Fractional optimum of the restricted domination LP.

    ``undominated`` masks the rows (default: every node), ``banned``
    masks columns out (already-selected nodes must not be re-bought),
    and each entry of ``touch_rows`` is an extra covering row — a mask
    of candidate columns of which at least one must be picked (the
    component-touch cuts).  Returns :data:`INFEASIBLE` when some row
    has no remaining column.
    """
    optimize = require_scipy()
    numpy = _numpy()
    rows_mask = bitset_graph.full if undominated is None else undominated
    candidates = iter_bits(bitset_graph.full & ~banned)
    if not candidates:
        return INFEASIBLE if rows_mask or touch_rows else 0.0
    column = {node: j for j, node in enumerate(candidates)}
    rows: List[List[float]] = []
    for u in iter_bits(rows_mask):
        row = [0.0] * len(candidates)
        hit = False
        for v in iter_bits(bitset_graph.closed[u] & ~banned):
            row[column[v]] = -1.0
            hit = True
        if not hit:
            return INFEASIBLE
        rows.append(row)
    for touch in touch_rows:
        row = [0.0] * len(candidates)
        hit = False
        for v in iter_bits(touch & ~banned):
            row[column[v]] = -1.0
            hit = True
        if not hit:
            return INFEASIBLE
        rows.append(row)
    if not rows:
        return 0.0
    result = optimize.linprog(
        numpy.ones(len(candidates)),
        A_ub=numpy.array(rows),
        b_ub=-numpy.ones(len(rows)),
        bounds=(0.0, 1.0),
        method="highs",
    )
    if not result.success:
        return INFEASIBLE
    return float(result.fun)


def lp_lower_bound(value: float) -> int:
    """The integral lower bound an LP value certifies."""
    if math.isinf(value):
        raise ValueError("infeasible LP certifies no bound")
    return max(0, math.ceil(value - LP_TOLERANCE))


def lp_domination_bound(graph: Graph) -> float:
    """Fractional domination number of ``graph``.

    Admissible lower bound on |MDS| <= |MWCDS| <= |MCDS|; the property
    tests assert it never exceeds the integral optimum.
    """
    if graph.num_nodes == 0:
        return 0.0
    return fractional_domination(BitsetGraph.from_graph(graph))


def _numpy() -> Any:
    from repro.kernels._compat import require_numpy

    return require_numpy()
