"""Experiment harness helpers: sweeps, aggregation, table rendering."""

from repro.analysis.montecarlo import monte_carlo
from repro.analysis.sweep import Aggregate, run_trials, summarize
from repro.analysis.tables import format_value, print_table, render_table
from repro.analysis.report import generate_report, rows_to_markdown

__all__ = [
    "Aggregate",
    "monte_carlo",
    "run_trials",
    "summarize",
    "format_value",
    "print_table",
    "render_table",
    "generate_report",
    "rows_to_markdown",
]
