"""Multi-trial experiment sweeps with simple aggregation.

Every benchmark runs each configuration over several seeds and reports
mean / max; this module keeps that machinery out of the benchmark
files.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Sequence


@dataclass(frozen=True)
class Aggregate:
    """Mean / standard deviation / extrema of one measured quantity."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "Aggregate":
        """Aggregate a non-empty sequence of numbers.

        ``std`` is the *sample* standard deviation
        (:func:`statistics.stdev`, Bessel-corrected): the trials behind
        an aggregate are a sample of seeds from the population of
        possible runs, not the population itself.  A single value has
        sample std 0.0 by convention.
        """
        if not values:
            raise ValueError("cannot aggregate an empty sequence")
        values = [float(v) for v in values]
        return cls(
            mean=statistics.fmean(values),
            std=statistics.stdev(values) if len(values) > 1 else 0.0,
            minimum=min(values),
            maximum=max(values),
            count=len(values),
        )


def run_trials(
    trial: Callable[[int], Mapping[str, float]],
    seeds: Iterable[int],
) -> Dict[str, Aggregate]:
    """Run ``trial(seed)`` for each seed; aggregate each returned key."""
    samples: Dict[str, List[float]] = {}
    for seed in seeds:
        row = trial(seed)
        for key, value in row.items():
            samples.setdefault(key, []).append(float(value))
    return {key: Aggregate.of(values) for key, values in samples.items()}


def summarize(aggregates: Mapping[str, Aggregate]) -> Dict[str, float]:
    """Flatten aggregates into ``key_mean`` / ``key_max`` columns."""
    flat: Dict[str, float] = {}
    for key, agg in aggregates.items():
        flat[f"{key}_mean"] = agg.mean
        flat[f"{key}_max"] = agg.maximum
    return flat
