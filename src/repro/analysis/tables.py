"""Plain-text table rendering for benchmark and experiment output.

Benchmarks print paper-vs-measured rows; this keeps the formatting in
one place so every experiment reads the same way.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def format_value(value) -> str:
    """Render one cell: floats get 3 significant decimals."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] = None,
    title: str = None,
) -> str:
    """Render rows of dicts as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [
        [format_value(row.get(col, "")) for col in columns] for row in rows
    ]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in rendered
    )
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, rule, body])
    return "\n".join(parts)


def print_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] = None,
    title: str = None,
) -> None:
    """Print :func:`render_table` with surrounding blank lines."""
    print()
    print(render_table(rows, columns=columns, title=title))
    print()
