"""Parallel Monte-Carlo trials.

The sweeps in :mod:`repro.analysis.sweep` run serially; larger studies
(hundreds of topologies per configuration) benefit from process
parallelism.  ``monte_carlo`` maps a top-level trial function over a
seed range with ``multiprocessing`` and aggregates like ``run_trials``.

The trial callable must be picklable (a module-level function, not a
lambda or closure) — the classic multiprocessing constraint; a helpful
error explains it if violated.

Topology-bound sweeps should pass ``graph=``: the call is then routed
through :class:`repro.sim.fleet.FleetRunner`, which ships the topology
to the workers once via shared memory (a ``Pool.map`` would pickle the
whole graph into every task) and calls ``trial(graph, seed)``.
"""

from __future__ import annotations

import multiprocessing
import pickle
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

from repro.analysis.sweep import Aggregate


def monte_carlo(
    trial: Callable[..., Mapping[str, float]],
    seeds: Iterable[int],
    *,
    processes: Optional[int] = None,
    graph: Any = None,
    registry: Any = None,
) -> Dict[str, Aggregate]:
    """Run ``trial(seed)`` across seeds, in parallel when possible.

    ``processes=None`` uses the CPU count; ``processes=1`` (or a
    single seed) falls back to a serial loop with no process overhead.

    With ``graph=`` the sweep runs on the fleet runner instead: the
    trial signature becomes ``trial(graph, seed)``, positions are
    shared read-only across spawn workers, and ``processes`` sizes the
    fleet (``0`` = inline).  Aggregation is identical either way.
    """
    seed_list = list(seeds)
    if not seed_list:
        raise ValueError("no seeds given")
    if graph is not None:
        from repro.sim.fleet import run_fleet

        if len(seed_list) > 1 and (processes is None or processes > 0):
            _require_picklable(trial)
        rows = run_fleet(
            graph, trial, seed_list, workers=processes, registry=registry
        )
        return _aggregate(rows)
    if processes is None:
        processes = min(multiprocessing.cpu_count(), len(seed_list))
    if len(seed_list) > 1:
        # Checked even on the serial path: a sweep must not pass on a
        # small machine (processes=1) and fail on a bigger one where
        # the same call fans out to workers.
        _require_picklable(trial)
    if processes <= 1 or len(seed_list) == 1:
        results: List[Mapping[str, float]] = [trial(seed) for seed in seed_list]
    else:
        with multiprocessing.Pool(processes) as pool:
            results = pool.map(trial, seed_list)
    return _aggregate(results)


def _require_picklable(trial: Callable[..., Mapping[str, float]]) -> None:
    try:
        pickle.dumps(trial)
    except Exception as failure:
        raise TypeError(
            "monte_carlo trials run in worker processes, so the "
            "trial must be a picklable top-level function "
            f"(got {trial!r}: {failure})"
        ) from failure


def _aggregate(rows: Iterable[Mapping[str, float]]) -> Dict[str, Aggregate]:
    samples: Dict[str, List[float]] = {}
    for row in rows:
        for key, value in row.items():
            samples.setdefault(key, []).append(float(value))
    return {key: Aggregate.of(values) for key, values in samples.items()}
