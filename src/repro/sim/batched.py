"""Batched twin of the event-driven simulator.

:class:`BatchedSimulator` executes exactly the runs the reference
:class:`~repro.sim.engine.Simulator` does — same protocols, same fault
plans, same transport retransmits, same ``perturbed_schedule`` tie
breaks — but restructures the hot loop around local broadcast:

* **Audience tables from CSR.**  At construction the whole adjacency is
  expanded once through :func:`repro.kernels.bfs.graph_to_csr` and
  lex-sorted into per-sender canonical audience tuples, replacing the
  oracle's per-transmit ``canonical_order(adjacency)`` sort.  A
  :attr:`Graph.version <repro.graphs.graph.Graph.version>` check keeps
  the tables honest under mobility.
* **Struct-of-arrays event queue.**  Instead of one global heap of
  ``(time, priority, seq, etype, target, payload)`` tuples, events live
  in per-time buckets: a heap of distinct times plus, per time, a flat
  record list in sequence order (or a ``(priority, seq)`` heap when a
  schedule perturbation is active).  A same-tick broadcast is one
  *fan-out record* carrying the whole audience tuple, not ``deg``
  heap entries.
* **Bulk counter updates.**  Deliveries and per-kind registry tallies
  for a fan-out are added in one arithmetic step
  (:meth:`SimStats.record_delivery_batch`), not ``deg`` increments.

Exactness contract: for any run that completes (normally, by ``until``
deadline, or by the ``max_events`` livelock guard), the batched engine
produces bit-identical :class:`~repro.sim.stats.SimStats`, traces,
per-node results, and RNG streams to the oracle.  The only tolerated
divergence is registry per-kind delivery counters after an exception
*thrown by a protocol handler* mid-fan-out (the batch was tallied
up-front); ``SimStats`` stays exact even then.  When a tracer is
attached, a non-unit latency model is used, or a schedule perturbation
is active, the engine transparently falls back to oracle-identical
per-receiver scheduling, so observable per-event order is preserved by
construction.
"""

from __future__ import annotations

import heapq
import weakref
from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.graphs.graph import Graph, canonical_order
from repro.kernels._compat import HAVE_NUMPY, require_numpy
from repro.sim.config import SimConfig
from repro.sim.engine import _DELIVER, _FAULT, NodeFactory, Simulator
from repro.sim.latency import FixedLatency
from repro.sim.messages import Message
from repro.sim.stats import SimStats

__all__ = [
    "AUTO_THRESHOLD",
    "BatchedSimulator",
    "ENGINES",
    "make_simulator",
    "resolve_engine",
]

#: Record tag for a batched local-broadcast fan-out: one record whose
#: target is the whole (already loss-filtered) audience tuple.  Distinct
#: from the oracle's event types, which the batched queue also carries.
_FANOUT = 3

ENGINES: Tuple[str, ...] = ("event", "batched", "auto")

#: Below this node count the bucket queue's bookkeeping rivals the heap
#: it replaces; same crossover the kernels use in ``resolve_method``.
AUTO_THRESHOLD = 64

#: Audience tables memoized per live graph, keyed by mutation version.
#: Fleet sweeps and benchmarks run thousands of simulators over one
#: topology; the CSR expansion is identical every time, so share it.
#: Entries die with their graph (weak keys) and a version mismatch
#: forces a rebuild, so stale adjacency can never leak into a run.
_AUDIENCE_CACHE: "weakref.WeakKeyDictionary[Graph, Tuple[int, Dict[Hashable, Tuple[Hashable, ...]]]]" = (
    weakref.WeakKeyDictionary()
)


def resolve_engine(engine: str, *, size: int, threshold: int = AUTO_THRESHOLD) -> str:
    """Resolve an engine request to ``"event"`` or ``"batched"``.

    Mirrors :func:`repro.kernels.resolve_method`: explicit choices pass
    through, ``"auto"`` picks ``"batched"`` iff numpy is importable and
    ``size >= threshold``.
    """
    if engine in ("event", "batched"):
        return engine
    if engine != "auto":
        raise ValueError(
            f"unknown engine {engine!r} (expected 'event', 'batched', or 'auto')"
        )
    if HAVE_NUMPY and size >= threshold:
        return "batched"
    return "event"


def make_simulator(
    graph: Graph,
    node_factory: NodeFactory,
    config: Optional[SimConfig] = None,
    *,
    tracer: Any = None,
    registry: Any = None,
) -> Simulator:
    """Build the simulator ``config.engine`` selects.

    This is the single construction point every protocol entry point
    (``run_protocol``, ``run_mis``, the backbone registry, chaos,
    mobility) routes through, so ``SimConfig(engine=...)`` — and the
    CLI's ``--engine`` — select the core end-to-end.
    """
    config = config if config is not None else SimConfig()
    choice = resolve_engine(config.engine, size=graph.num_nodes)
    if choice == "batched":
        return BatchedSimulator(
            graph, node_factory, config, tracer=tracer, registry=registry
        )
    return Simulator(graph, node_factory, config, tracer=tracer, registry=registry)


class BatchedSimulator(Simulator):
    """Bucket-queue simulator, bit-identical to the event oracle.

    See the module docstring for the data layout and the exactness
    contract.  Requires numpy (construction raises
    :class:`~repro.kernels.KernelUnavailableError` otherwise).
    """

    def __init__(
        self,
        graph: Graph,
        node_factory: NodeFactory,
        config: Optional[SimConfig] = None,
        *,
        tracer: Any = None,
        registry: Any = None,
    ) -> None:
        # Queue and cache structures must exist before super().__init__:
        # node constructors may query neighbors, and they or the fault
        # plan may schedule events through the overridden _push_raw
        # during base-class setup.
        self._buckets: Dict[float, List[Tuple[Any, ...]]] = {}
        self._times: List[float] = []
        self._audience: Dict[Hashable, Tuple[Hashable, ...]] = {}
        self._nbr_cache: Dict[Hashable, FrozenSet[Hashable]] = {}
        self._graph_version = graph.version
        # The bulk CSR expansion is deferred to the first broadcast:
        # construction stays cheap for runs that never fan out (or get
        # stepped a few events at a time), and mutation-heavy runs fall
        # back to per-sender refills instead of re-expanding everything.
        self._audience_bulk_pending = True
        super().__init__(graph, node_factory, config, tracer=tracer, registry=registry)
        latency = self.latency
        # Exact type check: a FixedLatency subclass could override
        # __call__ with stateful behavior, which the fan-out fast path
        # would skip.
        self._fixed_delay: Optional[float] = (
            latency.delay if type(latency) is FixedLatency else None
        )

    # ------------------------------------------------------------------
    # Audience tables
    # ------------------------------------------------------------------
    def _build_audiences_for(self, graph: Graph) -> None:
        """Expand the whole adjacency into canonical audience tuples.

        One CSR pass replaces a per-transmit ``canonical_order`` over
        the neighbor set: :func:`~repro.kernels.bfs.graph_to_csr`
        returns the edge arrays sorted by ``(head, tail)`` with node
        indices in canonical order, so each head segment's tail run
        *is* that sender's canonical audience.  The expanded table is
        memoized per ``(graph, version)`` so simulators sweeping seeds
        over one topology pay for the expansion once.
        """
        version = graph.version
        cached = _AUDIENCE_CACHE.get(graph)
        if cached is not None and cached[0] == version:
            table = cached[1]
        else:
            table = self._expand_audiences(graph)
            _AUDIENCE_CACHE[graph] = (version, table)
        # Per-sender refills already present (post-mutation) take
        # precedence over the memoized table.
        merged = dict(table)
        merged.update(self._audience)
        self._audience = merged

    @staticmethod
    def _expand_audiences(graph: Graph) -> Dict[Hashable, Tuple[Hashable, ...]]:
        from repro.kernels.bfs import graph_to_csr

        np = require_numpy()
        node_list, heads, tails = graph_to_csr(graph)
        if len(heads) == 0:
            return {node: () for node in node_list}
        indices = np.arange(len(node_list))
        starts = np.searchsorted(heads, indices, side="left")
        ends = np.searchsorted(heads, indices, side="right")
        tail_nodes = [node_list[j] for j in tails.tolist()]
        return {
            node: tuple(tail_nodes[starts[i] : ends[i]])
            for i, node in enumerate(node_list)
        }

    def _sync_topology(self) -> None:
        version = self.graph.version
        if version != self._graph_version:
            self._graph_version = version
            self._audience.clear()
            self._nbr_cache.clear()

    def _audience_of(self, sender: Hashable) -> Tuple[Hashable, ...]:
        audience = self._audience.get(sender)
        if audience is None:
            if self._audience_bulk_pending:
                self._audience_bulk_pending = False
                self._build_audiences_for(self.graph)
                audience = self._audience.get(sender)
                if audience is not None:
                    return audience
            # Post-mutation lazy refill; adjacency raises KeyError for
            # unknown senders exactly like the oracle's sort would.
            audience = tuple(canonical_order(self.graph.adjacency(sender)))
            self._audience[sender] = audience
        return audience

    # ------------------------------------------------------------------
    # Node-facing API
    # ------------------------------------------------------------------
    def neighbor_ids(self, node_id: Hashable) -> FrozenSet[Hashable]:
        """Live neighbors of ``node_id`` (crashed nodes excluded)."""
        self._sync_topology()
        cached = self._nbr_cache.get(node_id)
        if cached is None:
            cached = frozenset(
                nbr for nbr in self.graph.adjacency(node_id) if nbr not in self._dead
            )
            self._nbr_cache[node_id] = cached
        return cached

    def crash_node(self, node_id: Hashable) -> None:
        super().crash_node(node_id)
        self._nbr_cache.clear()

    def revive_node(self, node_id: Hashable) -> None:
        super().revive_node(node_id)
        self._nbr_cache.clear()

    def transmit(self, message: Message) -> None:
        """One radio transmission, batched into a fan-out record.

        The send-side bookkeeping, audience order, and every RNG draw
        (loss, latency, tie priority) happen in exactly the oracle's
        order; only the *scheduling* of the surviving deliveries is
        collapsed into one record when the latency is fixed and no
        perturbation is active.
        """
        sender = message.sender
        if sender in self._dead:
            return
        self._sync_topology()
        self.stats.record_send(sender, message.kind, message.payload_size(), self.now)
        if self.tracer is not None:
            self.tracer.on_send(self.now, message)
        audience: Tuple[Hashable, ...]
        if message.dest is None:
            audience = self._audience_of(sender)
        else:
            if message.dest not in self.graph.adjacency(sender):
                raise ValueError(
                    f"node {sender!r} cannot unicast to non-neighbor {message.dest!r}"
                )
            audience = (message.dest,)
        delay = self._fixed_delay
        if delay is None or self._tie_rng is not None:
            # Oracle-identical path: per-receiver latency draws and tie
            # priorities must interleave with the loss draws in the
            # exact per-receiver order the oracle uses.
            for receiver in audience:
                if receiver in self._dead:
                    continue
                if self._cuts and any(
                    p.severs(sender, receiver) for p in self._cuts
                ):
                    self.stats.partition_blocked += 1
                    self._record_loss(receiver, message)
                    continue
                if self._loss_now and self._rng.random() < self._loss_now:
                    self._record_loss(receiver, message)
                    continue
                self._push(
                    self.now + self.latency(sender, receiver), _DELIVER, receiver, message
                )
            return
        if self._dead or self._cuts or self._loss_now:
            survivors: List[Hashable] = []
            for receiver in audience:
                if receiver in self._dead:
                    continue
                if self._cuts and any(
                    p.severs(sender, receiver) for p in self._cuts
                ):
                    self.stats.partition_blocked += 1
                    self._record_loss(receiver, message)
                    continue
                if self._loss_now and self._rng.random() < self._loss_now:
                    self._record_loss(receiver, message)
                    continue
                survivors.append(receiver)
            if not survivors:
                return
            audience = tuple(survivors)
        elif not audience:
            return
        self._push_raw(self.now + delay, _FANOUT, audience, message)

    # ------------------------------------------------------------------
    # Bucket queue
    # ------------------------------------------------------------------
    def _push_raw(self, time: float, etype: int, target: Hashable, payload: Any) -> None:
        bucket = self._buckets.get(time)
        if bucket is None:
            bucket = self._buckets[time] = []
            heapq.heappush(self._times, time)
        if self._tie_rng is not None:
            # Perturbation: within a time bucket events order by
            # (priority, seq), matching the oracle's global heap key.
            heapq.heappush(
                bucket,
                (self._tie_rng.random(), next(self._seq), etype, target, payload),
            )
        else:
            # FIFO: list append order *is* global sequence order within
            # the bucket (each push draws the next seq implicitly).
            bucket.append((etype, target, payload))

    def _defer_head(self, time: float) -> None:
        """Replicate the oracle's ``until`` overshoot behavior.

        The oracle pops the earliest overshooting event and re-pushes it
        with a *fresh* sequence number (and fresh tie priority), which
        moves it behind its same-time peers for the next ``run`` call.
        """
        bucket = self._buckets[time]
        if self._tie_rng is not None:
            _, _, etype, target, payload = heapq.heappop(bucket)
            heapq.heappush(
                bucket,
                (self._tie_rng.random(), next(self._seq), etype, target, payload),
            )
            return
        record = bucket.pop(0)
        if record[0] != _FANOUT:
            bucket.append(record)
            return
        # The head *event* is the fan-out's first receiver: split it off
        # to the back, keep the rest at the front.
        receivers = record[1]
        if len(receivers) > 1:
            bucket.insert(0, (_FANOUT, receivers[1:], record[2]))
        bucket.append((_DELIVER, receivers[0], record[2]))

    def _process_events(self, until: Optional[float], max_events: int) -> SimStats:
        processed = 0
        delivered = 0
        buckets = self._buckets
        times = self._times
        dead = self._dead
        tracer = self.tracer
        registry = self.registry
        deliveries_by_kind = self._deliveries_by_kind
        tie = self._tie_rng
        # Bind handlers once per run: the sanitizer wraps on_message as
        # an instance attribute at construction, so lookups here see it.
        handlers = {nid: node.on_message for nid, node in self.nodes.items()}
        timers = {nid: node.on_timer for nid, node in self.nodes.items()}
        try:
            while times:
                time = times[0]
                if until is not None and time > until:
                    self._defer_head(time)
                    self.now = until
                    break
                self.now = time
                # The bucket stays registered while draining: handlers
                # may schedule more work at this same time, which must
                # land behind (FIFO) or be merge-ordered into (tie
                # mode) the current bucket.
                bucket = buckets[time]
                index = 0
                while True:
                    if tie is not None:
                        if not bucket:
                            break
                        _, _, etype, target, payload = heapq.heappop(bucket)
                    else:
                        if index >= len(bucket):
                            break
                        etype, target, payload = bucket[index]
                        index += 1
                    if etype == _FANOUT:
                        count = len(target)
                        if (
                            tracer is None
                            and not dead
                            and processed + count <= max_events
                        ):
                            processed += count
                            if registry is not None:
                                kind = payload.kind
                                deliveries_by_kind[kind] = (
                                    deliveries_by_kind.get(kind, 0) + count
                                )
                            for receiver in target:
                                delivered += 1
                                handlers[receiver](payload)
                        else:
                            for receiver in target:
                                processed += 1
                                if processed > max_events:
                                    raise RuntimeError(
                                        "protocol did not quiesce within "
                                        f"{max_events} events"
                                    )
                                if receiver in dead:
                                    continue
                                delivered += 1
                                if registry is not None:
                                    kind = payload.kind
                                    deliveries_by_kind[kind] = (
                                        deliveries_by_kind.get(kind, 0) + 1
                                    )
                                if tracer is not None:
                                    tracer.on_deliver(self.now, receiver, payload)
                                handlers[receiver](payload)
                        continue
                    processed += 1
                    if processed > max_events:
                        raise RuntimeError(
                            f"protocol did not quiesce within {max_events} events"
                        )
                    if etype == _FAULT:
                        self._apply_plan_state(payload)
                        continue
                    if target in dead:
                        continue
                    if etype == _DELIVER:
                        delivered += 1
                        if registry is not None:
                            kind = payload.kind
                            deliveries_by_kind[kind] = (
                                deliveries_by_kind.get(kind, 0) + 1
                            )
                        if tracer is not None:
                            tracer.on_deliver(self.now, target, payload)
                        handlers[target](payload)
                    else:
                        timers[target](payload)
                del buckets[time]
                heapq.heappop(times)
        finally:
            # The oracle tallies each delivery before its handler runs,
            # so deliveries made before a livelock guard (or a handler
            # exception) must land even on the raising path.
            self.stats.record_delivery_batch(delivered)
        self.stats.events_processed += processed
        return self.stats
