"""Unified simulation configuration.

:class:`SimConfig` replaces the loose ``latency=``/``loss_rate=``/
``seed=`` keyword arguments that used to be threaded separately through
``Simulator``, ``run_protocol`` and every algorithm entry point.  One
frozen value now describes the whole radio environment — latency model,
ambient loss, the optional declarative :class:`~repro.faults.plan.FaultPlan`
the simulator executes, and the optional reliable-transport
configuration protocols run over.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.faults.plan import FaultPlan
from repro.sim.latency import LatencyModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.transport.config import TransportConfig


@dataclass(frozen=True)
class SimConfig:
    """Everything a simulation needs to know about its environment.

    Attributes:
        latency: delivery-latency model (``None`` = fixed unit latency,
            the synchronous round model of the paper's theorems).
        loss_rate: ambient per-delivery loss probability in ``[0, 1)``.
        seed: seed for the loss RNG (and anything else the simulator
            randomizes); ``None`` = nondeterministic.
        max_events: livelock guard passed to ``Simulator.run``.
        fault_plan: declarative chaos schedule the simulator executes
            (loss bursts, crashes/revivals, partitions).
        transport: when set, every protocol node is wrapped in the
            reliable transport (ack/retransmit, duplicate suppression,
            liveness heartbeats).  ``True`` selects the default
            :class:`~repro.transport.config.TransportConfig`.
        engine: which simulator core executes the run — ``"event"``
            (the reference heap-based oracle), ``"batched"`` (the
            numpy-backed bucket engine, bit-identical but faster on
            broadcast-heavy workloads), or ``"auto"`` (batched iff
            numpy is importable and the graph has ≥ 64 nodes,
            mirroring the kernels' ``resolve_method``).
    """

    latency: Optional[LatencyModel] = None
    loss_rate: float = 0.0
    seed: Optional[int] = None
    max_events: int = 10_000_000
    fault_plan: FaultPlan = field(default_factory=FaultPlan)
    transport: Any = None
    engine: str = "auto"

    def __post_init__(self) -> None:
        if self.engine not in ("event", "batched", "auto"):
            raise ValueError(
                f"unknown engine {self.engine!r} "
                "(expected 'event', 'batched', or 'auto')"
            )
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if self.max_events <= 0:
            raise ValueError("max_events must be positive")
        if self.fault_plan is None:
            object.__setattr__(self, "fault_plan", FaultPlan())
        if self.transport is True:
            from repro.transport.config import TransportConfig

            object.__setattr__(self, "transport", TransportConfig())

    @property
    def transport_config(self) -> "Optional[TransportConfig]":
        """The transport configuration, or ``None`` when disabled."""
        return self.transport or None

    @property
    def faulty(self) -> bool:
        """True when the config injects any fault (loss or plan)."""
        return bool(self.fault_plan) or self.loss_rate > 0.0

    def with_plan(self, plan: Optional[FaultPlan]) -> "SimConfig":
        """A copy with ``fault_plan`` replaced."""
        return replace(self, fault_plan=plan if plan is not None else FaultPlan())

    def reseeded(self, seed: Optional[int]) -> "SimConfig":
        """A copy with a different RNG seed."""
        return replace(self, seed=seed)


_LEGACY_SIM_KWARGS = ("latency", "loss_rate", "seed", "max_events")


def coerce_sim_config(
    config: Optional[SimConfig], legacy: Dict[str, Any], where: str
) -> SimConfig:
    """Fold deprecated loose kwargs into a :class:`SimConfig`.

    Emits exactly one DeprecationWarning per call regardless of how many
    legacy kwargs were passed; raises ``TypeError`` for unknown kwargs.
    """
    unknown = [k for k in legacy if k not in _LEGACY_SIM_KWARGS]
    if unknown:
        raise TypeError(
            f"{where}() got unexpected keyword arguments {sorted(unknown)!r}"
        )
    if not legacy:
        return config if config is not None else SimConfig()
    warnings.warn(
        f"passing {sorted(legacy)!r} to {where}() is deprecated; "
        "pass a SimConfig instead (e.g. "
        "SimConfig(latency=..., loss_rate=..., seed=...))",
        DeprecationWarning,
        stacklevel=3,
    )
    if config is None:
        config = SimConfig()
    fields = {
        "latency": config.latency,
        "loss_rate": config.loss_rate,
        "seed": config.seed,
        "max_events": config.max_events,
    }
    fields.update(legacy)
    return SimConfig(
        latency=fields["latency"],
        loss_rate=fields["loss_rate"],
        seed=fields["seed"],
        max_events=fields["max_events"],
        fault_plan=config.fault_plan,
        transport=config.transport,
        engine=config.engine,
    )


def merge_entry_args(
    sim: Optional[SimConfig],
    *,
    seed: Optional[int] = None,
    transport: Any = None,
    legacy: Optional[Dict[str, Any]] = None,
    where: str = "run",
) -> SimConfig:
    """Resolve a unified backbone entry point's arguments to a config.

    The unified signature is ``run(graph, *, seed=None, tracer=None,
    registry=None, transport=None, sim=None)``: ``seed`` and
    ``transport`` are first-class conveniences that override the
    corresponding :class:`SimConfig` fields; anything in ``legacy``
    (e.g. the deprecated ``latency=`` kwarg) warns once and is folded
    in, with explicit values taking precedence over the config's.
    """
    legacy = dict(legacy or {})
    unknown = [k for k in legacy if k not in _LEGACY_SIM_KWARGS]
    if unknown:
        raise TypeError(
            f"{where}() got unexpected keyword arguments {sorted(unknown)!r}"
        )
    if legacy:
        warnings.warn(
            f"passing {sorted(legacy)!r} to {where}() is deprecated; "
            "pass sim=SimConfig(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
    config = sim if sim is not None else SimConfig()
    updates: Dict[str, Any] = dict(legacy)
    if seed is not None:
        updates["seed"] = seed
    if transport is not None:
        updates["transport"] = transport
    if updates:
        config = replace(config, **updates)
    return config
