"""Fleet runner: thousands of seeded runs over spawn workers.

Monte-Carlo studies (backbone-size distributions, chaos matrices, the
Theorem 10/12 sweeps) repeat the same protocol on the same topology
under different seeds.  :class:`FleetRunner` executes such a sweep over
``spawn`` worker processes while shipping the topology exactly once:

* node positions live in one :class:`~repro.shard.pool.SharedPositions`
  float64 block; each worker rebuilds the unit-disk graph from the
  shared rows (float64 is exact, so every worker sees the identical
  edge set) and keeps it for its whole seed range;
* trials are small picklable values (:class:`BackboneTrial`,
  :class:`ChaosTrial`, or any module-level callable with the same
  signature) — only the trial object and the seed chunk cross the pipe;
* with a parent-side registry, workers keep a private
  :class:`~repro.obs.registry.MetricsRegistry` + span recorder and
  piggyback a :class:`~repro.obs.pipeline.TelemetryFrame` on every
  reply, exactly the :class:`~repro.shard.pool.ShardServePool`
  protocol, so fleet totals and stitched traces come for free.

``workers=0`` runs the same trials inline in the parent — the
deterministic baseline the tests compare worker rows against (the rows
are identical: each trial reseeds everything from its seed argument).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, replace
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.graphs.graph import canonical_order
from repro.graphs.udg import UnitDiskGraph
from repro.kernels._compat import require_numpy
from repro.obs.pipeline import (
    SpanRecorder,
    TelemetryFrame,
    TelemetryHarvest,
    TraceContext,
    TraceStitcher,
)
from repro.shard.pool import SharedPositions

__all__ = [
    "BackboneTrial",
    "ChaosTrial",
    "FleetRunner",
    "FleetTrial",
    "run_fleet",
]

#: A fleet trial: ``trial(graph, seed) -> row``.  Must be picklable
#: (module-level function or dataclass instance), must derive all its
#: randomness from ``seed``, and must not mutate ``graph``.
FleetTrial = Callable[[UnitDiskGraph, int], Mapping[str, float]]


@dataclass(frozen=True)
class BackboneTrial:
    """Build one backbone per seed and report size/cost metrics.

    ``jitter`` swaps the unit latency for a per-seed
    :class:`~repro.sim.latency.UniformLatency`, turning the sweep into
    an asynchrony study (Theorem 10's size bound is latency-free, so
    the size column must stay flat while rounds move).
    """

    algorithm: str = "algorithm2"
    engine: str = "auto"
    jitter: bool = False
    transport: Any = None

    def __call__(self, graph: UnitDiskGraph, seed: int) -> Mapping[str, float]:
        from repro.backbone import build
        from repro.sim.config import SimConfig
        from repro.sim.latency import UniformLatency

        config = SimConfig(seed=seed, transport=self.transport, engine=self.engine)
        if self.jitter:
            config = replace(config, latency=UniformLatency(seed=seed))
        result = build(self.algorithm, graph, sim=config)
        stats = result.meta.get("stats")
        row: Dict[str, float] = {
            "backbone": float(len(result.dominators)),
            "mis": float(len(result.mis_dominators)),
        }
        if stats is not None:
            row["messages"] = float(stats.messages_sent)
            row["rounds"] = float(stats.finish_time)
            row["max_per_node"] = float(stats.max_messages_per_node())
        return row


@dataclass(frozen=True)
class ChaosTrial:
    """One chaos-matrix cell per seed: plan, run, verify survivors.

    The fault plan is regenerated per seed (victims, partition ball,
    and loss burst all derive from it), so a sweep over seeds explores
    plan space on a fixed topology.
    """

    algorithm: str = "algorithm2"
    loss: float = 0.0
    crashes: int = 2
    partition: bool = True
    engine: str = "auto"

    def __call__(self, graph: UnitDiskGraph, seed: int) -> Mapping[str, float]:
        from repro.faults.chaos import default_fault_plan, run_chaos

        plan = default_fault_plan(
            graph,
            loss=self.loss,
            crashes=self.crashes,
            partition=self.partition,
            seed=seed,
        )
        report = run_chaos(
            self.algorithm, graph, plan, seed=seed, engine=self.engine
        )
        return {
            "valid": float(report.valid),
            "epochs": float(report.epochs),
            "survivors": float(report.survivor_count),
            "backbone": float(len(report.dominators)),
            "messages": float(report.messages_total),
            "retransmissions": float(report.retransmissions),
        }


class _FleetTelemetry:
    """Worker-private registry + spans, frame-per-reply (pool protocol)."""

    def __init__(self, label: str) -> None:
        from repro.obs.registry import MetricsRegistry

        self.label = label
        self.registry = MetricsRegistry()
        self.spans = SpanRecorder(label)
        self.seq = 0
        self.trials = self.registry.counter(
            "fleet_trials_total", "seeded trials executed"
        )

    def frame(self) -> TelemetryFrame:
        self.seq += 1
        return TelemetryFrame.capture(
            self.label, self.seq, self.registry, spans=self.spans.drain()
        )


def _rebuild_graph(
    shared: SharedPositions, radius: float, node_ids: Sequence[Hashable]
) -> UnitDiskGraph:
    """Reconstruct the parent's graph from shared position rows.

    Row ``i`` is ``node_ids[i]``; float64 round-trips exactly, so the
    rebuilt unit-disk edge set is identical to the parent's.
    """
    from repro.geometry.point import Point

    rows = shared.array
    positions = {
        node: Point(float(rows[i, 0]), float(rows[i, 1]))
        for i, node in enumerate(node_ids)
    }
    return UnitDiskGraph(positions, radius=radius)


def _fleet_worker(
    conn: Any,
    shared: SharedPositions,
    radius: float,
    node_ids: Sequence[Hashable],
    label: str = "f?",
    telemetry: bool = False,
) -> None:
    """Worker loop: rebuild the graph once, then run seed chunks.

    Module-level so ``spawn`` can import it.  Message protocol mirrors
    the shard pool: ``("run", trial, seeds, ctx)`` →
    ``("rows", rows, frame|None)``; ``("close",)`` →
    ``("bye", frame|None)``.
    """
    from repro.check.sanitize import sanitizer_enabled

    if sanitizer_enabled():
        shared.protect()
    tel = _FleetTelemetry(label) if telemetry else None
    graph = _rebuild_graph(shared, radius, node_ids)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            # Parent vanished: exit quietly, like the shard workers.
            return
        kind = message[0]
        if kind == "run":
            _, trial, seeds, ctx = message
            rows: List[Mapping[str, float]] = []
            if tel is not None:
                with tel.spans.span(
                    "fleet.run_chunk", parent=ctx, seeds=len(seeds)
                ):
                    for seed in seeds:
                        rows.append(trial(graph, seed))
                        tel.trials.inc()
                conn.send(("rows", rows, tel.frame()))
            else:
                for seed in seeds:
                    rows.append(trial(graph, seed))
                conn.send(("rows", rows, None))
        elif kind == "close":
            conn.send(("bye", tel.frame() if tel is not None else None))
            break
        else:  # pragma: no cover - protocol error
            raise ValueError(f"unknown message {kind!r}")
    shared.close()
    conn.close()


def _default_workers() -> int:
    cpus = os.cpu_count() or 1
    return max(1, min(cpus - 1, 8))


class FleetRunner:
    """Execute seeded trials across spawn workers on one shared topology.

    ``workers=None`` sizes the fleet from the CPU count; ``workers=0``
    runs inline (no processes, deterministic baseline).  With a
    ``registry`` the parent absorbs worker telemetry frames into it and
    stitches worker spans (``export_trace``), like the shard pool.
    """

    def __init__(
        self,
        graph: UnitDiskGraph,
        *,
        workers: Optional[int] = None,
        registry: Any = None,
    ) -> None:
        self.graph = graph
        self.workers = _default_workers() if workers is None else workers
        self.registry = registry
        self.telemetry = registry is not None
        self.harvest: Optional[TelemetryHarvest] = (
            TelemetryHarvest(registry) if self.telemetry else None
        )
        self.stitcher: Optional[TraceStitcher] = (
            TraceStitcher() if self.telemetry else None
        )
        self.spans: Optional[SpanRecorder] = (
            SpanRecorder("parent") if self.telemetry else None
        )
        self.shared: Optional[SharedPositions] = None
        self._procs: List[Tuple[Any, Any]] = []
        if self.workers > 0:
            self._start_workers()

    def _start_workers(self) -> None:
        require_numpy()
        ctx = multiprocessing.get_context("spawn")
        node_ids = canonical_order(self.graph.positions)
        self.shared = SharedPositions.create(
            [
                (self.graph.positions[n].x, self.graph.positions[n].y)
                for n in node_ids
            ]
        )
        for i in range(self.workers):
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_fleet_worker,
                args=(
                    child_conn,
                    self.shared,
                    self.graph.radius,
                    node_ids,
                    f"f{i}",
                    self.telemetry,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._procs.append((process, parent_conn))

    def _absorb(self, frame: Optional[TelemetryFrame]) -> None:
        if frame is None or self.harvest is None:
            return
        self.harvest.absorb(frame)
        if frame.spans and self.stitcher is not None:
            self.stitcher.add(frame.spans)

    def run(
        self, trial: FleetTrial, seeds: Sequence[int]
    ) -> List[Mapping[str, float]]:
        """Run ``trial`` for every seed; rows come back in seed order.

        Seeds are split into one contiguous chunk per worker (static
        partitioning — trials on one topology have near-uniform cost),
        all chunks run concurrently, and the rows are reassembled in
        the caller's seed order regardless of worker completion order.
        """
        seed_list = list(seeds)
        if not seed_list:
            raise ValueError("no seeds given")
        if not self._procs:
            graph = self.graph
            rows = [trial(graph, seed) for seed in seed_list]
            if self.registry is not None:
                self.registry.counter(
                    "fleet_trials_total", "seeded trials executed"
                ).inc(len(rows))
            return rows
        count = len(self._procs)
        chunk = (len(seed_list) + count - 1) // count
        assignments = [
            (i, seed_list[lo : lo + chunk])
            for i, lo in enumerate(range(0, len(seed_list), chunk))
        ]
        ctx: Optional[TraceContext] = None
        if self.spans is not None:
            with self.spans.span(
                "fleet.dispatch", seeds=len(seed_list), workers=len(assignments)
            ) as span:
                ctx = span.context
                rows = self._scatter_gather(trial, assignments, ctx)
            if self.stitcher is not None:
                self.stitcher.add(self.spans.drain())
        else:
            rows = self._scatter_gather(trial, assignments, None)
        return rows

    def _scatter_gather(
        self,
        trial: FleetTrial,
        assignments: Sequence[Tuple[int, List[int]]],
        ctx: Optional[TraceContext],
    ) -> List[Mapping[str, float]]:
        for worker_id, chunk_seeds in assignments:
            _, conn = self._procs[worker_id]
            try:
                conn.send(("run", trial, chunk_seeds, ctx))
            except (BrokenPipeError, OSError) as exc:
                raise RuntimeError(
                    f"fleet worker f{worker_id} died mid-sweep"
                ) from exc
        rows: List[Mapping[str, float]] = []
        for worker_id, chunk_seeds in assignments:
            process, conn = self._procs[worker_id]
            try:
                reply = conn.recv()
            except (EOFError, OSError) as exc:
                raise RuntimeError(
                    f"fleet worker f{worker_id} died mid-sweep"
                ) from exc
            if reply[0] != "rows":  # pragma: no cover - protocol error
                raise RuntimeError(f"unexpected worker reply {reply!r}")
            rows.extend(reply[1])
            self._absorb(reply[2])
        return rows

    def merged_telemetry(self) -> Dict[str, Any]:
        """Latest per-worker metric states merged into one fleet state."""
        if self.harvest is None:
            return {"ts": 0.0, "families": {}}
        return self.harvest.merged()

    def export_trace(self, path: str) -> int:
        """Write the stitched worker trace as JSONL; returns span count."""
        if self.stitcher is None:
            return 0
        if self.spans is not None:
            self.stitcher.add(self.spans.drain())
        return self.stitcher.to_jsonl(path)

    def close(self) -> None:
        """Stop workers (absorbing final frames), release shared memory."""
        for process, conn in self._procs:
            try:
                conn.send(("close",))
                reply = conn.recv()
                if len(reply) > 1:
                    self._absorb(reply[1])
            except (BrokenPipeError, EOFError, OSError):  # pragma: no cover
                pass
            conn.close()
            process.join(timeout=10)
        self._procs = []
        if self.spans is not None and self.stitcher is not None:
            self.stitcher.add(self.spans.drain())
        if self.shared is not None:
            self.shared.close()
            self.shared.unlink()
            self.shared = None

    def __enter__(self) -> "FleetRunner":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def run_fleet(
    graph: UnitDiskGraph,
    trial: FleetTrial,
    seeds: Sequence[int],
    *,
    workers: Optional[int] = None,
    registry: Any = None,
) -> List[Mapping[str, float]]:
    """One-shot convenience: run a fleet sweep and tear it down."""
    with FleetRunner(graph, workers=workers, registry=registry) as fleet:
        return fleet.run(trial, seeds)
