"""Discrete-event message-passing simulator for distributed protocols."""

from repro.sim.batched import BatchedSimulator, make_simulator, resolve_engine
from repro.sim.config import SimConfig
from repro.sim.engine import Simulator, run_protocol
from repro.sim.latency import FixedLatency, UniformLatency
from repro.sim.messages import Message
from repro.sim.node import NodeContext, ProtocolNode
from repro.sim.stats import SimStats
from repro.sim.trace import TraceEvent, TraceRecorder

__all__ = [
    "TraceEvent",
    "TraceRecorder",
    "BatchedSimulator",
    "SimConfig",
    "Simulator",
    "run_protocol",
    "make_simulator",
    "resolve_engine",
    "FixedLatency",
    "UniformLatency",
    "Message",
    "NodeContext",
    "ProtocolNode",
    "SimStats",
]
