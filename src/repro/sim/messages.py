"""Message envelope used by the simulator.

Protocols exchange small typed payloads.  The simulator treats the
payload as opaque; ``kind`` is the protocol-level message name (the
paper's BLACK / GRAY / MIS-DOMINATOR / ... messages) and is what the
per-kind message accounting groups by.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional


@dataclass(frozen=True)
class Message:
    """A protocol message.

    ``dest`` is ``None`` for a local broadcast (one radio transmission
    heard by every neighbor — the paper's unit of message accounting) or
    a specific neighbor id for a unicast.
    """

    sender: Hashable
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)
    dest: Optional[Hashable] = None

    def get(self, key: str, default: Any = None) -> Any:
        """Payload field access with a default."""
        return self.data.get(key, default)

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    @property
    def is_broadcast(self) -> bool:
        """Whether the message was a local broadcast."""
        return self.dest is None

    def payload_size(self) -> int:
        """Number of payload entries, for communication-volume stats.

        Counts 1 per scalar field and the length of each collection
        field (a neighbor list of k ids costs k), plus 1 for the kind
        header — a simple, protocol-agnostic size model.
        """
        size = 1  # the message kind itself
        for value in self.data.values():
            if isinstance(value, (tuple, list, frozenset, set, dict)):
                size += max(len(value), 1)
            else:
                size += 1
        return size
