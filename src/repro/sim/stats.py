"""Run statistics: message, transmission, and time accounting.

The paper's complexity theorems count *messages* (radio transmissions:
one local broadcast = one message regardless of how many neighbors hear
it) and *time* (rounds in the synchronous model).  :class:`SimStats`
tracks both, plus per-kind and per-node breakdowns used by the
complexity benchmarks.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Hashable


@dataclass
class SimStats:
    """Counters accumulated over one simulation run."""

    messages_sent: int = 0
    deliveries: int = 0
    dropped: int = 0
    by_kind: Counter = field(default_factory=Counter)
    by_node: Counter = field(default_factory=Counter)
    payload_entries: int = 0
    payload_by_kind: Counter = field(default_factory=Counter)
    finish_time: float = 0.0
    events_processed: int = 0
    first_send_by_kind: Dict[str, float] = field(default_factory=dict)
    last_send_by_kind: Dict[str, float] = field(default_factory=dict)
    partition_blocked: int = 0
    fault_transitions: int = 0

    def record_send(
        self, sender: Hashable, kind: str, payload_size: int = 1, time: float = 0.0
    ) -> None:
        """Account one radio transmission of ``payload_size`` entries.

        The message *count* is the paper's complexity measure; the
        entry count is the communication-volume measure that separates
        O(1)-payload protocols (Algorithm II's bounded dominator lists)
        from O(Δ)-payload ones (Wu-Li's HELLO neighbor lists).  The
        first/last transmission times per kind bound each message
        kind's activity window in simulated time (the phase telemetry
        of interleaved protocols like Algorithm II reads them).
        """
        self.messages_sent += 1
        self.by_kind[kind] += 1
        self.by_node[sender] += 1
        self.payload_entries += payload_size
        self.payload_by_kind[kind] += payload_size
        self.first_send_by_kind.setdefault(kind, time)
        self.last_send_by_kind[kind] = time

    def record_delivery(self) -> None:
        """Account one successful per-receiver delivery."""
        self.deliveries += 1

    def record_delivery_batch(self, count: int) -> None:
        """Account ``count`` successful deliveries in one step.

        The batched engine tallies a whole fan-out (or a whole run's
        accumulated deliveries) at once instead of ``count`` separate
        increments; the resulting totals are identical.
        """
        self.deliveries += count

    def record_drop(self) -> None:
        """Account one lost per-receiver delivery."""
        self.dropped += 1

    def messages_per_node(self) -> float:
        """Average transmissions per participating node."""
        if not self.by_node:
            return 0.0
        return self.messages_sent / len(self.by_node)

    def max_messages_per_node(self) -> int:
        """Worst-case transmissions by a single node.

        Theorem 12's O(n) message bound follows from this being O(1)
        for Algorithm II.
        """
        if not self.by_node:
            return 0
        return max(self.by_node.values())

    def summary(self) -> Dict[str, float]:
        """Flat summary dict for table printing."""
        return {
            "messages": self.messages_sent,
            "deliveries": self.deliveries,
            "dropped": self.dropped,
            "finish_time": self.finish_time,
            "max_per_node": self.max_messages_per_node(),
        }
