"""Discrete-event simulator for distributed protocols on a graph.

The radio model is the paper's: a node's transmission is heard by every
current neighbor in the communication graph (local broadcast), and one
transmission counts as one message.  Delivery times come from a pluggable
latency model; with the default fixed unit latency the execution is the
synchronous round model the complexity theorems assume.

Fault injection (per-delivery loss, node crashes) goes beyond the paper
and exists to stress protocol implementations in tests.
"""

from __future__ import annotations

import heapq
import itertools
import random
from contextlib import contextmanager
from typing import Any, Callable, Dict, FrozenSet, Hashable, Iterable, Iterator, Optional, Tuple

from repro.graphs.graph import Graph, canonical_order
from repro.obs.flightrec import flight_record
from repro.sim.config import SimConfig
from repro.sim.latency import FixedLatency
from repro.sim.messages import Message
from repro.sim.node import NodeContext, ProtocolNode
from repro.sim.stats import SimStats

NodeFactory = Callable[[NodeContext], ProtocolNode]

_DELIVER = 0
_TIMER = 1
_FAULT = 2


class _SchedulePerturbation:
    """Active schedule override installed by :func:`perturbed_schedule`."""

    def __init__(self, seed: Optional[int], recorder: Any = None) -> None:
        self.seed = seed
        self.recorder = recorder


_PERTURBATION: Optional[_SchedulePerturbation] = None


@contextmanager
def perturbed_schedule(
    seed: Optional[int], recorder: Any = None
) -> Iterator[None]:
    """Perturb tie-breaking among simultaneously-scheduled events.

    Every :class:`Simulator` constructed inside the ``with`` block draws
    a random priority (from a dedicated ``random.Random(seed)``) for
    each scheduled event; the priority orders events *with equal
    scheduled time* ahead of the FIFO sequence number.  Delivery times
    are untouched, so every perturbed execution is a legal run of the
    radio model — the race detector re-runs protocols under several
    such seeds and diffs the outcomes.

    ``seed=None`` leaves the schedule in default FIFO order (used to
    capture the baseline trace).  ``recorder``, when given, is attached
    as the simulator's event tracer unless the caller installed one.
    """
    global _PERTURBATION
    previous = _PERTURBATION
    _PERTURBATION = _SchedulePerturbation(seed, recorder)
    try:
        yield
    finally:
        _PERTURBATION = previous


def active_perturbation_seed() -> Optional[int]:
    """Seed of the enclosing :func:`perturbed_schedule`, or ``None``.

    Exposed so order-independence claims *outside* the simulator — the
    shard stitcher's frontier-exchange fixpoint — can opt into the same
    race sweeps: when a seeded perturbation is active they shuffle their
    internally-arbitrary visit orders with it.
    """
    if _PERTURBATION is None:
        return None
    return _PERTURBATION.seed


class Simulator:
    """Runs one protocol over all nodes of a communication graph."""

    def __init__(
        self,
        graph: Graph,
        node_factory: NodeFactory,
        config: Optional[SimConfig] = None,
        *,
        tracer=None,
        registry=None,
    ) -> None:
        config = config if config is not None else SimConfig()
        self.config = config
        self.graph = graph
        self.tracer = tracer
        self.registry = registry
        perturbation = _PERTURBATION
        self._tie_rng: Optional[random.Random] = None
        if perturbation is not None:
            if perturbation.seed is not None:
                self._tie_rng = random.Random(perturbation.seed)
            if perturbation.recorder is not None and self.tracer is None:
                self.tracer = perturbation.recorder
        # Registry counters are batched: the hot path only bumps plain
        # dicts (sends are already tallied in ``stats.by_kind``) and
        # :meth:`run` flushes the deltas into the registry on exit.
        # Live per-event Counter.inc calls cost ~10% on a full run.
        self._deliveries_by_kind: Dict[str, int] = {}
        self._drops_by_kind: Dict[str, int] = {}
        self._flushed: Dict[Tuple[str, str], int] = {}
        self.latency = (
            config.latency if config.latency is not None else FixedLatency(1.0)
        )
        self.loss_rate = config.loss_rate
        self._rng = random.Random(config.seed)
        self.now = 0.0
        self.stats = SimStats()
        self._queue: list = []
        self._seq = itertools.count()
        self._dead: set = set()
        self._started = False
        # Fault-plan execution state: the ambient plan, the set of nodes
        # the *plan* currently holds dead (manual crash_node calls are
        # tracked independently inside ``_dead``), the effective loss
        # rate, and the currently-severed partition cuts.
        self._plan = config.fault_plan
        self._plan_dead: set = set()
        self._loss_now = config.loss_rate
        self._cuts: Tuple[Any, ...] = ()
        factory = node_factory
        transport_cfg = config.transport_config
        if transport_cfg is not None:
            from repro.transport.reliable import with_transport

            factory = with_transport(node_factory, transport_cfg)
        self.nodes: Dict[Hashable, ProtocolNode] = {}
        for node_id in graph.nodes():
            ctx = NodeContext(self, node_id)
            self.nodes[node_id] = factory(ctx)

    # ------------------------------------------------------------------
    # Node-facing API (called through NodeContext)
    # ------------------------------------------------------------------
    def neighbor_ids(self, node_id: Hashable) -> FrozenSet[Hashable]:
        """Live neighbors of ``node_id`` (crashed nodes excluded)."""
        return frozenset(
            nbr for nbr in self.graph.adjacency(node_id) if nbr not in self._dead
        )

    def transmit(self, message: Message) -> None:
        """One radio transmission: fan out deliveries to the audience."""
        sender = message.sender
        if sender in self._dead:
            return
        self.stats.record_send(sender, message.kind, message.payload_size(), self.now)
        if self.tracer is not None:
            self.tracer.on_send(self.now, message)
        if message.dest is None:
            # Canonical fan-out order: a raw set here would make the
            # delivery sequence (and hence every same-time tie-break)
            # a function of the hash seed.
            audience: Iterable[Hashable] = canonical_order(
                self.graph.adjacency(sender)
            )
        else:
            if message.dest not in self.graph.adjacency(sender):
                raise ValueError(
                    f"node {sender!r} cannot unicast to non-neighbor {message.dest!r}"
                )
            audience = (message.dest,)
        for receiver in audience:
            if receiver in self._dead:
                continue
            if self._cuts and any(p.severs(sender, receiver) for p in self._cuts):
                self.stats.partition_blocked += 1
                self._record_loss(receiver, message)
                continue
            if self._loss_now and self._rng.random() < self._loss_now:
                self._record_loss(receiver, message)
                continue
            delay = self.latency(sender, receiver)
            self._push(self.now + delay, _DELIVER, receiver, message)

    def _record_loss(self, receiver: Hashable, message: Message) -> None:
        self.stats.record_drop()
        if self.registry is not None:
            drops = self._drops_by_kind
            drops[message.kind] = drops.get(message.kind, 0) + 1
        if self.tracer is not None:
            self.tracer.on_drop(self.now, receiver, message)

    def schedule_timer(self, node_id: Hashable, delay: float, tag: str) -> None:
        """Schedule an ``on_timer`` callback for a node."""
        if delay < 0:
            raise ValueError("timer delay must be non-negative")
        self._push(self.now + delay, _TIMER, node_id, tag)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def crash_node(self, node_id: Hashable) -> None:
        """Crash a node: it stops sending and receiving immediately."""
        self._dead.add(node_id)

    def revive_node(self, node_id: Hashable) -> None:
        """Bring a crashed node back (with whatever state it had)."""
        self._dead.discard(node_id)

    @property
    def crashed(self) -> FrozenSet[Hashable]:
        """Currently crashed nodes."""
        return frozenset(self._dead)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    # ------------------------------------------------------------------
    # Fault-plan execution
    # ------------------------------------------------------------------
    def _apply_plan_state(self, time: float) -> None:
        """Move the simulator to the plan's state as of ``time``."""
        plan = self._plan
        target = set(plan.dead_at(time))
        for node_id in canonical_order(target - self._plan_dead):
            self.crash_node(node_id)
        for node_id in canonical_order(self._plan_dead - target):
            self.revive_node(node_id)
        self._plan_dead = target
        self._loss_now = plan.loss_rate_at(time, base=self.loss_rate)
        self._cuts = plan.active_partitions(time)
        self.stats.fault_transitions += 1
        if self.registry is not None:
            self.registry.counter(
                "sim_fault_transitions_total",
                "Fault-plan state changes applied by the simulator",
            ).inc()
        flight_record(
            "fault_transition",
            sim_time=time,
            dead=len(target),
            loss=self._loss_now,
            partitions=len(self._cuts),
        )
        tracer = self.tracer
        if tracer is not None and hasattr(tracer, "on_fault"):
            tracer.on_fault(
                time,
                {
                    "dead": tuple(canonical_order(target)),
                    "loss": self._loss_now,
                    "partitions": len(self._cuts),
                },
            )

    def _schedule_plan(self) -> None:
        if not self._plan:
            return
        self._apply_plan_state(0.0)
        for when in self._plan.boundary_times():
            if when > 0.0:
                self._push(when, _FAULT, None, when)

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> SimStats:
        """Start every node and process events to quiescence.

        Stops when the event queue drains, simulated time passes
        ``until``, or ``max_events`` have been processed (a livelock
        guard: exceeding it raises ``RuntimeError`` because a correct
        terminating protocol should have gone quiet).

        ``run`` may be called repeatedly (e.g. with increasing
        ``until`` deadlines to interleave topology changes); nodes are
        started exactly once, on the first call.
        """
        if max_events is None:
            max_events = self.config.max_events
        if not self._started:
            self._started = True
            # The plan's time-0 state (pre-dead nodes, initial bursts or
            # partitions) applies before any node starts.
            self._schedule_plan()
            # Canonical start order, for the same reason transmit sorts
            # its audience: on_start sends seed the event queue.
            for node_id in canonical_order(self.nodes):
                if node_id not in self._dead:
                    self.nodes[node_id].on_start()
        try:
            return self._process_events(until, max_events)
        finally:
            self.stats.finish_time = self.now
            if self.registry is not None:
                self._flush_registry()

    def _process_events(self, until: Optional[float], max_events: int) -> SimStats:
        processed = 0
        while self._queue:
            time, _, _, etype, target, payload = heapq.heappop(self._queue)
            if until is not None and time > until:
                # Leave the event for a later `run(until=...)` call.
                self._push_raw(time, etype, target, payload)
                self.now = until
                break
            self.now = time
            processed += 1
            if processed > max_events:
                raise RuntimeError(
                    f"protocol did not quiesce within {max_events} events"
                )
            if etype == _FAULT:
                self._apply_plan_state(payload)
                continue
            if target in self._dead:
                continue
            node = self.nodes[target]
            if etype == _DELIVER:
                self.stats.record_delivery()
                if self.registry is not None:
                    deliveries = self._deliveries_by_kind
                    deliveries[payload.kind] = deliveries.get(payload.kind, 0) + 1
                if self.tracer is not None:
                    self.tracer.on_deliver(self.now, target, payload)
                node.on_message(payload)
            else:
                node.on_timer(payload)
        self.stats.events_processed += processed
        return self.stats

    def collect_results(self) -> Dict[Hashable, Dict[str, Any]]:
        """Gather each node's :meth:`ProtocolNode.result`."""
        return {node_id: node.result() for node_id, node in self.nodes.items()}

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _flush_registry(self) -> None:
        """Push the per-kind tallies accumulated since the last flush
        into the registry (idempotent: only deltas are added)."""
        tallies = (
            ("sim_messages_total", self.stats.by_kind),
            ("sim_deliveries_total", self._deliveries_by_kind),
            ("sim_drops_total", self._drops_by_kind),
        )
        for name, by_kind in tallies:
            for kind, count in by_kind.items():
                delta = count - self._flushed.get((name, kind), 0)
                if delta:
                    self.registry.counter(
                        name, "Radio events by message kind", kind=kind
                    ).inc(delta)
                    self._flushed[(name, kind)] = count

    def _push(self, time: float, etype: int, target: Hashable, payload) -> None:
        self._push_raw(time, etype, target, payload)

    def _push_raw(self, time: float, etype: int, target: Hashable, payload) -> None:
        # The tie priority orders events with equal scheduled time: 0.0
        # (FIFO via the sequence number) normally, a random draw under
        # an active schedule perturbation (see `perturbed_schedule`).
        priority = self._tie_rng.random() if self._tie_rng is not None else 0.0
        heapq.heappush(
            self._queue, (time, priority, next(self._seq), etype, target, payload)
        )


def run_protocol(
    graph: Graph,
    node_factory: NodeFactory,
    config: Optional[SimConfig] = None,
    *,
    tracer=None,
    registry=None,
) -> Tuple[Dict[Hashable, Dict[str, Any]], SimStats]:
    """Convenience: build a simulator, run to quiescence, return
    ``(per-node results, stats)``.

    The simulator class is chosen by ``config.engine`` (see
    :func:`repro.sim.batched.resolve_engine`); both engines produce
    bit-identical stats and traces.
    """
    from repro.sim.batched import make_simulator

    sim = make_simulator(graph, node_factory, config, tracer=tracer, registry=registry)
    stats = sim.run()
    return sim.collect_results(), stats
