"""Link latency models.

The paper's complexity claims are stated for the standard synchronous
message-passing model, so the default latency is a fixed one time unit —
delivery times then coincide with rounds.  The jittered model breaks the
lock-step to check that the protocols are correct under asynchrony (they
only ever wait on *sets* of messages, never on global rounds).
"""

from __future__ import annotations

import random
from typing import Hashable, Optional, Protocol


class LatencyModel(Protocol):
    """Callable giving the delivery delay of one message on one link."""

    def __call__(self, sender: Hashable, receiver: Hashable) -> float: ...


class FixedLatency:
    """Every delivery takes exactly ``delay`` time units (default 1)."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay <= 0:
            raise ValueError("latency must be positive")
        self.delay = delay

    def __call__(self, sender: Hashable, receiver: Hashable) -> float:
        return self.delay


class UniformLatency:
    """Delivery delay drawn uniformly from ``[low, high]`` per message.

    Models asynchrony: different receivers of the same broadcast may
    hear it at different times, and messages can overtake each other.
    """

    def __init__(
        self,
        low: float = 0.5,
        high: float = 1.5,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not (0 < low <= high):
            raise ValueError("need 0 < low <= high")
        self.low = low
        self.high = high
        self._rng = rng if rng is not None else random.Random(seed)

    def __call__(self, sender: Hashable, receiver: Hashable) -> float:
        return self._rng.uniform(self.low, self.high)
