"""Protocol node base class and the context handed to each node.

A protocol is written the way the paper describes its algorithms: each
node holds local state, reacts to messages from its one-hop neighbors,
and may broadcast or unicast in response.  Nodes never touch the graph,
positions, or other nodes' state — the :class:`NodeContext` is the whole
world a node can see, which keeps implementations honest about the
"fully localized / position-less" claims.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, FrozenSet, Hashable

from repro.sim.messages import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class NodeContext:
    """A node's interface to the radio and the local clock.

    Exposes exactly the knowledge the paper grants a node: its own id
    and the ids of its one-hop neighbors ("each node is only required to
    know which nodes are in its vicinity").
    """

    def __init__(self, sim: "Simulator", node_id: Hashable) -> None:
        self._sim = sim
        self.node_id = node_id

    @property
    def neighbors(self) -> FrozenSet[Hashable]:
        """IDs of the current one-hop neighbors."""
        return self._sim.neighbor_ids(self.node_id)

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._sim.now

    def broadcast(self, kind: str, **data: Any) -> None:
        """Transmit one local broadcast heard by every neighbor.

        Counts as a single message, matching the paper's accounting of
        one radio transmission per send.
        """
        self._sim.transmit(Message(self.node_id, kind, data))

    def send(self, dest: Hashable, kind: str, **data: Any) -> None:
        """Unicast to a one-hop neighbor (still one radio transmission)."""
        self._sim.transmit(Message(self.node_id, kind, data, dest=dest))

    def set_timer(self, delay: float, tag: str = "timer") -> None:
        """Schedule :meth:`ProtocolNode.on_timer` after ``delay``."""
        self._sim.schedule_timer(self.node_id, delay, tag)


class ProtocolNode:
    """Base class for per-node protocol state machines.

    Subclasses override the three hooks.  ``self.ctx`` is available from
    construction time on; ``self.node_id`` is a shortcut for its id.
    """

    def __init__(self, ctx: NodeContext) -> None:
        self.ctx = ctx
        self.node_id = ctx.node_id

    def on_start(self) -> None:
        """Called once at time 0, before any message is delivered."""

    def on_message(self, msg: Message) -> None:
        """Called for each message this node receives."""

    def on_timer(self, tag: str) -> None:
        """Called when a timer set via ``ctx.set_timer`` fires."""

    def on_neighbor_down(self, peer: Hashable) -> None:
        """Called when the reliable transport declares ``peer`` dead.

        Only fires when the protocol runs over :mod:`repro.transport`;
        the default is a no-op.  Protocols override it to release
        waiting predicates that reference the lost neighbor (see the
        MIS/WCDS implementations).
        """

    def on_neighbor_up(self, peer: Hashable) -> None:
        """Called when a previously-suspected neighbor is heard again."""

    def result(self) -> Dict[str, Any]:
        """Protocol outcome for this node, collected after the run.

        Subclasses return their decision variables (color, lists, ...).
        """
        return {}
