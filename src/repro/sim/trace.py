"""Protocol execution traces.

A :class:`TraceRecorder` attached to a :class:`~repro.sim.engine.Simulator`
logs every transmission and delivery with its timestamp, giving
post-mortem visibility into a protocol run: who sent what when, per-kind
timelines, and a human-readable transcript — the tool you want when a
distributed state machine wedges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional, Tuple

from repro.sim.messages import Message

SEND = "send"
DELIVER = "deliver"
DROP = "drop"
FAULT = "fault"


@dataclass(frozen=True)
class TraceEvent:
    """One logged radio event."""

    time: float
    action: str  # send | deliver | drop
    node: Hashable  # the sender (send) or receiver (deliver/drop)
    kind: str
    sender: Hashable
    dest: Optional[Hashable]  # None = broadcast

    def format(self) -> str:
        """One transcript line."""
        target = "*" if self.dest is None else str(self.dest)
        if self.action == FAULT:
            return f"[{self.time:8.2f}] !! FAULT {self.kind}"
        if self.action == SEND:
            return f"[{self.time:8.2f}] {self.sender} -> {target}  {self.kind}"
        arrow = "==" if self.action == DELIVER else "xx"
        return f"[{self.time:8.2f}] {self.sender} {arrow}> {self.node}  {self.kind}"


class TraceRecorder:
    """Accumulates :class:`TraceEvent` rows during a simulation run.

    Past ``max_events`` the recorder stops storing rows but keeps
    counting: ``truncated`` flips to ``True`` and ``dropped_events``
    says how much of the run the transcript is missing — a truncated
    trace announces itself instead of silently looking complete.

    With a ``registry`` (:class:`repro.obs.MetricsRegistry`) attached,
    every event is also counted into ``trace_events_total`` by action
    and message kind — counts that survive truncation.
    """

    def __init__(self, max_events: int = 1_000_000, *, registry=None) -> None:
        self.events: List[TraceEvent] = []
        self.max_events = max_events
        self.truncated = False
        self.dropped_events = 0
        self.registry = registry

    # ------------------------------------------------------------------
    # Hooks called by the simulator
    # ------------------------------------------------------------------
    def on_send(self, time: float, message: Message) -> None:
        self._append(
            TraceEvent(time, SEND, message.sender, message.kind, message.sender, message.dest)
        )

    def on_deliver(self, time: float, receiver: Hashable, message: Message) -> None:
        self._append(
            TraceEvent(time, DELIVER, receiver, message.kind, message.sender, message.dest)
        )

    def on_drop(self, time: float, receiver: Hashable, message: Message) -> None:
        self._append(
            TraceEvent(time, DROP, receiver, message.kind, message.sender, message.dest)
        )

    def on_fault(self, time: float, state: Dict[str, object]) -> None:
        """Log a fault-plan transition (dead set / loss / partition change)."""
        label = (
            f"dead={len(state.get('dead', ()))} "  # type: ignore[arg-type]
            f"loss={state.get('loss', 0.0)} "
            f"partitions={state.get('partitions', 0)}"
        )
        self._append(TraceEvent(time, FAULT, None, label, None, None))

    def _append(self, event: TraceEvent) -> None:
        if self.registry is not None:
            self.registry.counter(
                "trace_events_total", "Trace events by action and kind",
                action=event.action, kind=event.kind,
            ).inc()
        if len(self.events) >= self.max_events:
            self.truncated = True
            self.dropped_events += 1
            return
        self.events.append(event)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def sends(self, kind: Optional[str] = None) -> List[TraceEvent]:
        """All transmissions, optionally filtered by message kind."""
        return [
            e
            for e in self.events
            if e.action == SEND and (kind is None or e.kind == kind)
        ]

    def messages_of(self, node: Hashable) -> List[TraceEvent]:
        """Every event a node participated in (as sender or receiver)."""
        return [e for e in self.events if e.node == node or e.sender == node]

    def kind_timeline(self, kind: str) -> List[Tuple[float, Hashable]]:
        """(time, sender) pairs for every transmission of ``kind`` —
        handy for checking phase orderings (e.g. all GRAY before any
        2-HOP-DOMINATORS at a given node)."""
        return [(e.time, e.sender) for e in self.sends(kind)]

    def first_send_time(self, kind: str) -> Optional[float]:
        """When the first message of ``kind`` was transmitted."""
        sends = self.sends(kind)
        return sends[0].time if sends else None

    def summary(self) -> Dict[str, object]:
        """Event totals by action, plus the truncation signal."""
        counts = {SEND: 0, DELIVER: 0, DROP: 0, FAULT: 0}
        for event in self.events:
            counts[event.action] += 1
        return {
            "events": len(self.events),
            "sends": counts[SEND],
            "delivers": counts[DELIVER],
            "drops": counts[DROP],
            "faults": counts[FAULT],
            "truncated": self.truncated,
            "dropped_events": self.dropped_events,
        }

    def transcript(self, limit: Optional[int] = None) -> str:
        """The run as readable lines, optionally truncated."""
        rows = self.events if limit is None else self.events[:limit]
        lines = [event.format() for event in rows]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more events)")
        if self.truncated:
            lines.append(
                f"!!! trace truncated: {self.dropped_events} events dropped "
                f"past max_events={self.max_events}"
            )
        return "\n".join(lines)
