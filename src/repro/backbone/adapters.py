"""Built-in registrations for the backbone registry.

Importing this module (done by ``repro.backbone``) registers the
paper's algorithms, their centralized references, the bare MIS, and
the comparison baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.backbone.registry import (
    CentralizedAlgorithm,
    DistributedAlgorithm,
    as_backbone_result,
    register,
)
from repro.baselines.chen_liestman import greedy_wcds
from repro.baselines.guha_khuller import greedy_cds
from repro.baselines.mis_cds import mis_tree_cds
from repro.baselines.wu_li import wu_li_cds
from repro.baselines.wu_li_distributed import wu_li_distributed
from repro.mis.distributed import run_mis
from repro.wcds.algorithm1 import algorithm1_centralized, algorithm1_distributed
from repro.wcds.algorithm2 import algorithm2_centralized, algorithm2_distributed

register(DistributedAlgorithm(
    "algorithm1", algorithm1_distributed,
    description="Paper Algorithm I: tree levels + level-ranked MIS",
))
register(DistributedAlgorithm(
    "algorithm2", algorithm2_distributed,
    description="Paper Algorithm II: id-ranked MIS + 3-hop connectors",
))
register(DistributedAlgorithm(
    "mis", run_mis,
    description="Bare id-ranked distributed MIS (dominating, "
    "not necessarily weakly connected)",
))
register(DistributedAlgorithm(
    "wu-li-distributed", wu_li_distributed,
    description="Wu-Li marking + pruning, message-passing version",
))
register(CentralizedAlgorithm(
    "algorithm1-centralized", algorithm1_centralized,
    description="Centralized reference for Algorithm I",
))
register(CentralizedAlgorithm(
    "algorithm2-centralized", algorithm2_centralized,
    description="Centralized reference for Algorithm II",
))
register(CentralizedAlgorithm(
    "greedy-wcds", greedy_wcds,
    description="Chen-Liestman greedy WCDS baseline",
))
register(CentralizedAlgorithm(
    "greedy-cds", greedy_cds,
    description="Guha-Khuller greedy CDS baseline",
))
register(CentralizedAlgorithm(
    "wu-li", wu_li_cds,
    description="Wu-Li marking + pruning, centralized",
))
register(CentralizedAlgorithm(
    "mis-tree", mis_tree_cds,
    description="MIS + BFS-tree connectors CDS baseline",
))


# The optimality oracles of ``repro.opt`` import scipy/numpy machinery;
# wrap them in lazy module-level functions so registering them keeps
# ``import repro.backbone`` dependency-free (same trick as the sharded
# adapter below).
def _mds_exact(graph: Any) -> Any:
    from repro.opt.exact import opt_minimum_dominating_set

    return opt_minimum_dominating_set(graph)


def _wcds_exact(graph: Any) -> Any:
    from repro.opt.exact import opt_minimum_wcds

    return opt_minimum_wcds(graph)


def _cds_exact(graph: Any) -> Any:
    from repro.opt.exact import opt_minimum_cds

    return opt_minimum_cds(graph)


def _mwds_greedy(graph: Any) -> Any:
    from repro.opt.heuristics import greedy_mwds_wcds

    return greedy_mwds_wcds(graph)


register(CentralizedAlgorithm(
    "mds-exact", _mds_exact,
    description="LP-pruned exact minimum dominating set "
    "(optimality oracle, feasible to n ≈ 60)",
))
register(CentralizedAlgorithm(
    "wcds-exact", _wcds_exact,
    description="LP-pruned exact minimum WCDS "
    "(optimality oracle, feasible to n ≈ 60)",
))
register(CentralizedAlgorithm(
    "cds-exact", _cds_exact,
    description="LP-pruned exact minimum CDS "
    "(optimality oracle, feasible to n ≈ 40)",
))
register(CentralizedAlgorithm(
    "mwds-greedy", _mwds_greedy,
    description="Greedy MWDS + 2-hop Steiner connection "
    "(scalable WCDS upper-bound witness)",
))


@dataclass(frozen=True)
class ShardedAlgorithm:
    """Adapter for the tiled Algorithm II construction.

    Deterministic like the centralized references, but it threads the
    observability handles through so per-tile build and stitch metrics
    land in the caller's registry.  Requires a
    :class:`~repro.graphs.udg.UnitDiskGraph` — the tiling is geometric.
    """

    name: str
    description: str = ""
    distributed: bool = False

    def run(
        self,
        graph: Any,
        *,
        seed: Optional[int] = None,
        tracer: Any = None,
        registry: Any = None,
        transport: Any = None,
        sim: Any = None,
    ):
        from repro.graphs.udg import UnitDiskGraph
        from repro.shard.stitch import build_sharded

        if transport:
            raise ValueError(
                f"{self.name} is centralized; transport does not apply"
            )
        if sim is not None and (sim.faulty or sim.transport_config is not None):
            raise ValueError(
                f"{self.name} is centralized; faults and transport only "
                "apply to distributed simulations"
            )
        if not isinstance(graph, UnitDiskGraph):
            raise TypeError(
                f"{self.name} tiles the deployment plane and needs a "
                f"UnitDiskGraph, got {type(graph).__name__}"
            )
        result = build_sharded(graph, registry=registry, tracer=tracer)
        return as_backbone_result(result, self.name)


register(ShardedAlgorithm(
    "wcds-sharded",
    description="Paper Algorithm II built per spatial tile and "
    "stitched by frontier exchange (exact, boundary-local)",
))
