"""One front door for every backbone construction in the repo.

``build(name, graph, *, seed=None, tracer=None, registry=None,
transport=None, sim=None)`` runs any registered algorithm — the
paper's Algorithms I/II, their centralized references, the bare MIS,
or a baseline — and always returns a
:class:`~repro.wcds.base.BackboneResult`.
"""

from repro.backbone.registry import (
    BackboneAlgorithm,
    CentralizedAlgorithm,
    DistributedAlgorithm,
    as_backbone_result,
    build,
    get,
    names,
    register,
)
from repro.wcds.base import BackboneResult

import repro.backbone.adapters  # noqa: F401  (registers the built-ins)

__all__ = [
    "BackboneAlgorithm",
    "BackboneResult",
    "CentralizedAlgorithm",
    "DistributedAlgorithm",
    "as_backbone_result",
    "build",
    "get",
    "names",
    "register",
]
