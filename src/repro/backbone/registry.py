"""The unified backbone-algorithm registry.

Every backbone construction in the repo — the paper's Algorithms I and
II, their centralized references, the bare distributed MIS, and the
comparison baselines — is reachable here under a stable string name,
behind one calling convention:

    result = build("algorithm2", graph, seed=7, transport=True)

All entry points accept the same keyword-only arguments and return a
:class:`repro.wcds.base.BackboneResult`.  Centralized algorithms ignore
``seed`` (they are deterministic) and reject fault/transport options,
which only make sense in a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Optional, Protocol, Tuple, runtime_checkable

from repro.graphs.graph import Graph
from repro.wcds.base import BackboneResult, WCDSResult


@runtime_checkable
class BackboneAlgorithm(Protocol):
    """The protocol every registered backbone algorithm satisfies."""

    name: str
    description: str
    distributed: bool

    def run(
        self,
        graph: Graph,
        *,
        seed: Optional[int] = None,
        tracer: Any = None,
        registry: Any = None,
        transport: Any = None,
        sim: Any = None,
    ) -> BackboneResult:
        """Build a backbone of ``graph`` and return the common result."""
        ...  # pragma: no cover - protocol declaration


def as_backbone_result(result: Any, name: str) -> BackboneResult:
    """Coerce an algorithm's native return value to a BackboneResult.

    Accepts a BackboneResult (algorithm name filled in when missing), a
    plain :class:`WCDSResult`, a bare dominator set, or a
    ``(set, stats)`` tuple as returned by the distributed baselines.
    """
    meta: Dict[str, object] = {}
    if isinstance(result, tuple) and len(result) == 2:
        result, stats = result
        meta["stats"] = stats
    if isinstance(result, BackboneResult):
        if result.algorithm != name:
            result = replace(result, algorithm=name)
        return result
    if isinstance(result, WCDSResult):
        return BackboneResult(
            dominators=result.dominators,
            mis_dominators=result.mis_dominators,
            additional_dominators=result.additional_dominators,
            meta=dict(result.meta),
            algorithm=name,
        )
    if isinstance(result, (set, frozenset)):
        members = frozenset(result)
        return BackboneResult(
            dominators=members,
            mis_dominators=members,
            meta=meta,
            algorithm=name,
        )
    raise TypeError(
        f"algorithm {name!r} returned unsupported type {type(result).__name__}"
    )


@dataclass(frozen=True)
class DistributedAlgorithm:
    """Adapter for message-passing entry points with the unified
    keyword signature."""

    name: str
    fn: Callable[..., Any]
    description: str = ""
    distributed: bool = True

    def run(
        self,
        graph: Graph,
        *,
        seed: Optional[int] = None,
        tracer: Any = None,
        registry: Any = None,
        transport: Any = None,
        sim: Any = None,
    ) -> BackboneResult:
        kwargs: Dict[str, Any] = {
            "seed": seed, "registry": registry,
            "transport": transport, "sim": sim,
        }
        if self.fn.__name__ not in _NO_TRACER:
            kwargs["tracer"] = tracer
        return as_backbone_result(self.fn(graph, **kwargs), self.name)


#: Distributed entry points that do not take a ``tracer`` kwarg.
_NO_TRACER = frozenset({"wu_li_distributed"})


@dataclass(frozen=True)
class CentralizedAlgorithm:
    """Adapter for deterministic, whole-graph reference algorithms."""

    name: str
    fn: Callable[[Graph], Any]
    description: str = ""
    distributed: bool = False

    def run(
        self,
        graph: Graph,
        *,
        seed: Optional[int] = None,
        tracer: Any = None,
        registry: Any = None,
        transport: Any = None,
        sim: Any = None,
    ) -> BackboneResult:
        if transport:
            raise ValueError(
                f"{self.name} is centralized; transport does not apply"
            )
        if sim is not None and (sim.faulty or sim.transport_config is not None):
            raise ValueError(
                f"{self.name} is centralized; faults and transport only "
                "apply to distributed simulations"
            )
        return as_backbone_result(self.fn(graph), self.name)


_REGISTRY: Dict[str, BackboneAlgorithm] = {}


def register(algorithm: BackboneAlgorithm) -> BackboneAlgorithm:
    """Register ``algorithm`` under ``algorithm.name`` (last wins)."""
    _REGISTRY[algorithm.name] = algorithm
    return algorithm


def get(name: str) -> BackboneAlgorithm:
    """Look up a registered algorithm; raises KeyError with the valid
    names on a miss."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown backbone algorithm {name!r}; known: {', '.join(names())}"
        ) from None


def names(*, distributed: Optional[bool] = None) -> Tuple[str, ...]:
    """Registered algorithm names, optionally filtered by kind."""
    return tuple(
        sorted(
            name
            for name, algo in _REGISTRY.items()
            if distributed is None or algo.distributed == distributed
        )
    )


def build(
    name: str,
    graph: Graph,
    *,
    seed: Optional[int] = None,
    tracer: Any = None,
    registry: Any = None,
    transport: Any = None,
    sim: Any = None,
) -> BackboneResult:
    """Build a backbone with the named algorithm — the one front door."""
    return get(name).run(
        graph, seed=seed, tracer=tracer, registry=registry,
        transport=transport, sim=sim,
    )
