"""Experiments A1/S1 — ablations beyond the paper's claims.

A1: what Algorithm II's additional-dominators buy (dilation, and even
plain weak connectivity for the id-ranked MIS).
S1: position-less WCDS spanners vs position-based RNG/Gabriel graphs.
"""

from __future__ import annotations

from repro.baselines import gabriel_graph, relative_neighborhood_graph
from repro.experiments.base import Rows, checker, register
from repro.graphs import connected_random_udg, is_connected
from repro.spanner import fit_hop_bound, measure_dilation, verify_lemma6
from repro.wcds import (
    algorithm1_centralized,
    algorithm2_distributed,
    weakly_induced_subgraph,
)


@register(
    "A1",
    "Ablation: what the additional-dominators buy "
    "(6 random 70-node networks)",
    "Connectors are load-bearing: stripping them can disconnect the "
    "spanner; Algorithm I is smaller but has worse dilation.",
)
def run_connector_ablation() -> Rows:
    trials = 6
    alg1_violations = stripped_disconnected = 0
    worst = {"alg1": 0.0, "alg2": 0.0}
    sizes = {"alg1": 0, "alg2": 0}
    for seed in range(trials):
        g = connected_random_udg(70, 5.5, seed=seed)
        alg1 = algorithm1_centralized(g)
        alg2 = algorithm2_distributed(g)
        sizes["alg1"] += alg1.size
        sizes["alg2"] += alg2.size
        report1 = measure_dilation(g, alg1.spanner(g))
        report2 = measure_dilation(g, alg2.spanner(g))
        worst["alg1"] = max(worst["alg1"], report1.max_hop_ratio)
        worst["alg2"] = max(worst["alg2"], report2.max_hop_ratio)
        alg1_violations += not report1.hop_bound_holds
        assert report2.hop_bound_holds
        stripped = weakly_induced_subgraph(g, alg2.mis_dominators)
        stripped_disconnected += not is_connected(stripped)
    return [
        {
            "variant": "Algorithm I (MIS only, level rank)",
            "avg_size": sizes["alg1"] / trials,
            "worst_hop_ratio": worst["alg1"],
            "3h+2_violations": alg1_violations,
            "disconnected": 0,
        },
        {
            "variant": "Algorithm II minus connectors",
            "avg_size": sizes["alg2"] / trials,
            "worst_hop_ratio": float("nan"),
            "3h+2_violations": "-",
            "disconnected": stripped_disconnected,
        },
        {
            "variant": "Algorithm II (full)",
            "avg_size": sizes["alg2"] / trials,
            "worst_hop_ratio": worst["alg2"],
            "3h+2_violations": 0,
            "disconnected": 0,
        },
    ]


@checker("A1")
def check_connector_ablation(rows: Rows) -> None:
    alg1, _, alg2 = rows
    assert alg2["3h+2_violations"] == 0 and alg2["disconnected"] == 0
    assert alg1["avg_size"] < alg2["avg_size"]
    assert alg1["worst_hop_ratio"] >= alg2["worst_hop_ratio"] - 1e-9


@register(
    "S1",
    "Sparse spanner families, n=60 x4 (hop bound h' <= alpha*h + 2, "
    "alpha fitted; Lemma 6 then certifies the length bound)",
    "Position-less WCDS spanners trade a few edges for bounded "
    "hop dilation; RNG/Gabriel are sparser but dilate more.",
)
def run_spanner_families() -> Rows:
    rows = []
    trials = 4
    families = {
        "WCDS spanner (position-less)": None,
        "Gabriel graph (positions)": gabriel_graph,
        "RNG (positions)": relative_neighborhood_graph,
    }
    for label, builder in families.items():
        edges_per_node = worst_alpha = 0.0
        lemma6_ok = True
        for seed in range(trials):
            g = connected_random_udg(60, 5.0, seed=seed)
            if builder is None:
                spanner = algorithm2_distributed(g).spanner(g)
            else:
                spanner = builder(g)
            edges_per_node += spanner.num_edges / g.num_nodes / trials
            alpha = fit_hop_bound(g, spanner, beta=2)
            worst_alpha = max(worst_alpha, alpha)
            report = verify_lemma6(g, spanner, alpha, beta=2)
            lemma6_ok &= report.lemma_respected and report.conclusion_holds
        rows.append(
            {
                "spanner": label,
                "edges_per_node": edges_per_node,
                "fitted_hop_alpha": worst_alpha,
                "lemma6_holds": lemma6_ok,
            }
        )
    return rows


@checker("S1")
def check_spanner_families(rows: Rows) -> None:
    wcds, gabriel, rng = rows
    for row in rows:
        assert row["edges_per_node"] < 4.0
        assert row["lemma6_holds"]
    assert rng["edges_per_node"] < wcds["edges_per_node"]
    assert wcds["fitted_hop_alpha"] <= 3.0 + 1e-9
    assert rng["fitted_hop_alpha"] >= wcds["fitted_hop_alpha"]
