"""Experiments F1a/F1b — Figure 1: the unit-disk graph model.

Section 1: a dense UDG has Θ(n²) edges (the scalability motivation for
sparse spanners); at fixed density the edge count is linear.
"""

from __future__ import annotations

from repro.experiments.base import Rows, checker, register
from repro.graphs import uniform_random_udg


@register(
    "F1a",
    "UDG edges, fixed 6x6 area (paper: Theta(n^2) when dense)",
    "Densifying a fixed area grows edges quadratically.",
)
def run_dense_area() -> Rows:
    rows = []
    side = 6.0
    for n in (50, 100, 200, 400, 800):
        g = uniform_random_udg(n, side, seed=1)
        rows.append(
            {
                "n": n,
                "edges_fixed_area": g.num_edges,
                "m_over_n2": g.num_edges / (n * n),
            }
        )
    return rows


@checker("F1a")
def check_dense_area(rows: Rows) -> None:
    ratios = [row["m_over_n2"] for row in rows]
    assert max(ratios) / min(ratios) < 3.0
    assert rows[-1]["edges_fixed_area"] > 50 * rows[0]["edges_fixed_area"]


@register(
    "F1b",
    "UDG edges, fixed density (linear regime)",
    "At fixed density the UDG edge count is Theta(n).",
)
def run_fixed_density() -> Rows:
    rows = []
    for n in (50, 100, 200, 400, 800):
        side = (n / 8.0) ** 0.5 * 1.77  # expected degree ~8
        g = uniform_random_udg(n, side, seed=1)
        rows.append(
            {
                "n": n,
                "edges_fixed_density": g.num_edges,
                "m_over_n": g.num_edges / n,
            }
        )
    return rows


@checker("F1b")
def check_fixed_density(rows: Rows) -> None:
    ratios = [row["m_over_n"] for row in rows]
    assert max(ratios) / min(ratios) < 2.0
