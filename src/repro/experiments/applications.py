"""Experiments C1/C1b/R1/B1/M1 — comparisons and applications.

C1: backbone sizes across all algorithms.  C1b: ranking ablation.
R1: clusterhead routing stretch (§4.2).  B1: backbone broadcasting.
M1: WCDS maintenance under random-waypoint mobility (§4.2 sketch).
"""

from __future__ import annotations

import random

from repro.baselines import greedy_cds, greedy_wcds, mis_tree_cds, wu_li_cds
from repro.experiments.base import Rows, checker, register
from repro.geometry.packing import mis_neighbors_bound
from repro.graphs import connected_random_udg, hop_distance, is_connected
from repro.mis import greedy_mis, greedy_mis_dynamic_degree
from repro.mobility import MaintainedWCDS, RandomWaypointModel
from repro.routing import (
    ClusterheadRouter,
    backbone_broadcast,
    blind_flood,
    spanner_route,
)
from repro.wcds import (
    algorithm1_centralized,
    algorithm2_centralized,
    algorithm2_distributed,
    bounds,
)


@register(
    "C1",
    "Backbone sizes, n=150 (paper shape: MIS-WCDS < MIS-tree CDS; "
    "WCDS constructions < localized CDS)",
    "Relaxing connectivity to weak connectivity buys backbone size.",
)
def run_comparison() -> Rows:
    rows = []
    n = 150
    for side in (9.0, 7.0, 5.5):
        g = connected_random_udg(n, side, seed=4)
        rows.append(
            {
                "avg_deg": round(2 * g.num_edges / n, 1),
                "alg1_wcds": algorithm1_centralized(g).size,
                "alg2_wcds": algorithm2_distributed(g).size,
                "greedy_wcds": greedy_wcds(g).size,
                "mis_tree_cds": len(mis_tree_cds(g)),
                "greedy_cds": len(greedy_cds(g)),
                "wu_li_cds": len(wu_li_cds(g)),
            }
        )
    return rows


@checker("C1")
def check_comparison(rows: Rows) -> None:
    for row in rows:
        assert row["alg1_wcds"] <= row["mis_tree_cds"]
        assert row["alg1_wcds"] <= row["alg2_wcds"]
        assert row["wu_li_cds"] >= row["alg1_wcds"]
        assert row["greedy_wcds"] <= row["alg1_wcds"] + 3


@register(
    "C1b",
    "MIS size by ranking (ablation of Section 2.2 rankings)",
    "All rankings produce MISs within the same 5*opt envelope.",
)
def run_ranking_ablation() -> Rows:
    rows = []
    for seed in range(5):
        g = connected_random_udg(120, 7.0, seed=seed)
        rows.append(
            {
                "seed": seed,
                "levelrank_mis": algorithm1_centralized(g).size,
                "idrank_mis": len(greedy_mis(g)),
                "degreerank_mis": len(greedy_mis_dynamic_degree(g)),
            }
        )
    return rows


@checker("C1b")
def check_ranking_ablation(rows: Rows) -> None:
    for row in rows:
        sizes = [row["levelrank_mis"], row["idrank_mis"], row["degreerank_mis"]]
        # Any two MIS sizes are within Lemma 1's packing factor: each
        # node of one MIS is dominated by the other, and a dominator
        # covers at most five independent points.
        assert max(sizes) <= mis_neighbors_bound() * min(sizes)


def _routing_trial(n, side, seed, pairs=150):
    g = connected_random_udg(n, side, seed=seed)
    result = algorithm2_distributed(g)
    router = ClusterheadRouter(g, result)
    rng = random.Random(seed)
    nodes = sorted(g.nodes())
    stretches = []
    reference_gap = 0
    worst_slack = -(10**9)
    for _ in range(pairs):
        src, dst = rng.sample(nodes, 2)
        path = router.route(src, dst)
        router.validate_path(path)
        h = hop_distance(g, src, dst)
        routed = len(path) - 1
        stretches.append(routed / h)
        worst_slack = max(worst_slack, routed - bounds.topological_dilation_bound(h))
        reference = spanner_route(g, result, src, dst)
        reference_gap = max(reference_gap, routed - (len(reference) - 1))
    return {
        "n": n,
        "avg_deg": round(2 * g.num_edges / n, 1),
        "pairs": pairs,
        "mean_stretch": sum(stretches) / len(stretches),
        "worst_stretch": max(stretches),
        "worst_slack_vs_3h+2": worst_slack,
        "worst_gap_vs_minhop": reference_gap,
    }


@register(
    "R1",
    "Clusterhead routing stretch over the WCDS spanner "
    "(paper bound: hops <= 3h+2)",
    "Section 4.2 routing delivers over black edges within the bound.",
)
def run_routing() -> Rows:
    return [
        _routing_trial(80, 6.0, seed=1),
        _routing_trial(150, 8.0, seed=2),
        _routing_trial(250, 10.0, seed=3),
    ]


@checker("R1")
def check_routing(rows: Rows) -> None:
    for row in rows:
        assert row["worst_slack_vs_3h+2"] <= 0
        assert row["mean_stretch"] < 2.5
        assert row["worst_gap_vs_minhop"] <= 6


@register(
    "B1",
    "Broadcast transmissions, n=300 (blind flooding vs WCDS backbone)",
    "Section 1: broadcasting only needs the backbone to retransmit.",
)
def run_broadcast() -> Rows:
    rows = []
    n = 300
    for side in (11.0, 8.0, 6.0, 5.0):
        g = connected_random_udg(n, side, seed=6)
        result = algorithm2_distributed(g)
        flood = blind_flood(g, 0)
        backbone = backbone_broadcast(g, result, 0)
        rows.append(
            {
                "avg_deg": round(2 * g.num_edges / n, 1),
                "U": result.size,
                "flood_tx": flood.transmissions,
                "backbone_tx": backbone.transmissions,
                "saving": 1 - backbone.transmissions / flood.transmissions,
                "coverage": backbone.full_coverage,
            }
        )
    return rows


@checker("B1")
def check_broadcast(rows: Rows) -> None:
    for row in rows:
        assert row["coverage"]
        assert row["backbone_tx"] < row["flood_tx"]
    savings = [row["saving"] for row in rows]
    assert savings[-1] > savings[0]
    assert savings[-1] > 0.4


def _mobility_trial(seed, steps=40):
    g = connected_random_udg(60, 5.0, seed=seed)
    maintained = MaintainedWCDS(g)
    model = RandomWaypointModel(g, 5.0, speed_range=(0.05, 0.2), seed=seed)
    valid_steps = touched_total = max_locality = 0
    size_overhead = []
    for _ in range(steps):
        report = maintained.apply_events(model.step())
        touched_total += len(report.touched)
        max_locality = max(max_locality, report.max_distance_to_event)
        valid_steps += maintained.is_valid()
        if is_connected(g):
            size_overhead.append(
                maintained.result().size / algorithm2_centralized(g).size
            )
    return {
        "seed": seed,
        "steps": steps,
        "valid_steps": valid_steps,
        "roles_changed": touched_total,
        "max_locality_hops": max_locality,
        "size_vs_rebuild": (
            sum(size_overhead) / len(size_overhead) if size_overhead else 1.0
        ),
    }


@register(
    "M1",
    "WCDS maintenance under random waypoint "
    "(validity every step; changes local to the event)",
    "Section 4.2's maintenance sketch: local repairs keep the WCDS valid.",
)
def run_maintenance() -> Rows:
    return [_mobility_trial(seed) for seed in range(4)]


@checker("M1")
def check_maintenance(rows: Rows) -> None:
    for row in rows:
        assert row["valid_steps"] == row["steps"]
        assert row["max_locality_hops"] <= 4
        assert row["size_vs_rebuild"] <= 1.5
