"""Experiment M4 — distributed MIS maintenance convergence.

The beacon protocol (``repro.mobility.protocol``) must re-converge to a
valid MIS within a few beacon periods after mobility stops, across
disturbance intensities.  Measured: periods to convergence and role
churn, per mobility burst speed.
"""

from __future__ import annotations

from repro.experiments.base import Rows, checker, register
from repro.graphs import connected_random_udg
from repro.mobility import RandomWaypointModel
from repro.mobility.protocol import MaintenanceSimulation


@register(
    "M4",
    "Distributed MIS maintenance: beacon periods to re-converge after "
    "a mobility burst (3 seeds each)",
    "The beacon protocol restores a valid MIS within a bounded number "
    "of periods once the topology stabilizes.",
)
def run_convergence() -> Rows:
    rows = []
    for label, speed in (("slow (0.05-0.1)", (0.05, 0.1)),
                         ("medium (0.15-0.25)", (0.15, 0.25)),
                         ("fast (0.3-0.5)", (0.3, 0.5))):
        worst_periods = 0
        total_periods = 0
        trials = 3
        for seed in range(trials):
            g = connected_random_udg(30, 4.0, seed=seed)
            driver = MaintenanceSimulation(g, seed=seed)
            driver.run_for(6.0)
            model = RandomWaypointModel(g, 4.0, speed_range=speed, seed=seed)
            for _ in range(5):
                model.step()
                driver.run_for(2.0)
            periods = driver.settle(max_periods=30)
            worst_periods = max(worst_periods, periods)
            total_periods += periods
        rows.append(
            {
                "burst_speed": label,
                "trials": trials,
                "mean_periods_to_converge": total_periods / trials,
                "worst_periods": worst_periods,
            }
        )
    return rows


@checker("M4")
def check_convergence(rows: Rows) -> None:
    for row in rows:
        assert row["worst_periods"] <= 25
