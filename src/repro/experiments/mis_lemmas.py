"""Experiments F3/F4/F5/F6 — the MIS structure lemmas of Section 2.

F3 (Lemma 1): ≤ 5 MIS neighbors of any non-MIS node.
F4 (Lemma 2): ≤ 23 MIS nodes at exactly 2 hops, ≤ 47 within 3 hops.
F5 (Lemma 3): complementary MIS subsets within 2-3 hops.
F6 (Theorem 4): level-ranked MIS puts them exactly 2 hops apart.
"""

from __future__ import annotations

import math

from repro.experiments.base import Rows, checker, register
from repro.geometry import mis_three_hop_bound, mis_two_hop_bound
from repro.graphs import (
    bfs_distances,
    build_udg,
    connected_random_udg,
    grid_udg,
    uniform_random_udg,
)
from repro.mis import (
    complementary_subsets_within,
    greedy_mis,
    greedy_mis_dynamic_degree,
    lemma2_extrema,
    level_ranking,
    max_mis_neighbors,
)


def pentagon_instance():
    """The Lemma 1 tightness adversary: 5 MIS nodes around a center."""
    pts = {0: (0.0, 0.0)}
    for i in range(5):
        angle = 2 * math.pi * i / 5
        pts[i + 1] = (0.99 * math.cos(angle), 0.99 * math.sin(angle))
    g = build_udg(pts)
    ranks = {n: ((1 if n == 0 else 0), n) for n in g.nodes()}
    return g, greedy_mis(g, ranks)


@register(
    "F3",
    "Max #MIS neighbors of a non-MIS node (paper bound: 5)",
    "Lemma 1: at most five MIS neighbors; five is achievable.",
)
def run_lemma1() -> Rows:
    rows = []
    for n, side in ((100, 4.0), (300, 6.0), (600, 7.0)):
        worst = 0
        for seed in range(5):
            g = uniform_random_udg(n, side, seed=seed)
            worst = max(worst, max_mis_neighbors(g, greedy_mis(g)))
        rows.append(
            {"workload": f"uniform n={n}", "max_mis_neighbors": worst, "bound": 5}
        )
    grid = grid_udg(15, 15, spacing=0.5)
    rows.append(
        {
            "workload": "grid 15x15 d=0.5",
            "max_mis_neighbors": max_mis_neighbors(grid, greedy_mis(grid)),
            "bound": 5,
        }
    )
    g, mis = pentagon_instance()
    rows.append(
        {
            "workload": "pentagon adversary",
            "max_mis_neighbors": max_mis_neighbors(g, mis),
            "bound": 5,
        }
    )
    return rows


@checker("F3")
def check_lemma1(rows: Rows) -> None:
    assert all(row["max_mis_neighbors"] <= 5 for row in rows)
    assert rows[-1]["max_mis_neighbors"] == 5  # tightness


@register(
    "F4",
    "MIS nodes at exactly 2 hops (<=23) and within 3 hops (<=47)",
    "Lemma 2's packing bounds hold; observed extrema sit well below.",
)
def run_lemma2() -> Rows:
    rows = []
    for label, factory in (
        ("uniform n=300 dense", lambda s: uniform_random_udg(300, 5.0, seed=s)),
        ("uniform n=600", lambda s: uniform_random_udg(600, 8.0, seed=s)),
        ("grid 20x20 d=0.35", lambda s: grid_udg(20, 20, spacing=0.35)),
    ):
        worst_two = worst_three = 0
        for seed in range(4):
            g = factory(seed)
            two, three = lemma2_extrema(g, greedy_mis(g))
            worst_two = max(worst_two, two)
            worst_three = max(worst_three, three)
        rows.append(
            {
                "workload": label,
                "max_2hop": worst_two,
                "bound_2hop": mis_two_hop_bound(),
                "max_3hop": worst_three,
                "bound_3hop": mis_three_hop_bound(),
            }
        )
    return rows


@checker("F4")
def check_lemma2(rows: Rows) -> None:
    for row in rows:
        assert row["max_2hop"] <= row["bound_2hop"]
        assert row["max_3hop"] <= row["bound_3hop"]
        assert row["max_3hop"] >= 2


@register(
    "F5",
    "Complementary MIS subsets within 2/3 hops (of 25 trials)",
    "Lemma 3: always within 3 hops; 2 hops is NOT guaranteed.",
)
def run_lemma3() -> Rows:
    rows = []
    for label, mis_of in (
        ("id-ranked MIS", greedy_mis),
        ("degree-ranked MIS", greedy_mis_dynamic_degree),
    ):
        within3 = within2 = 0
        trials = 25
        for seed in range(trials):
            g = connected_random_udg(60, 5.0, seed=seed)
            mis = mis_of(g)
            within3 += complementary_subsets_within(g, mis, 3)
            within2 += complementary_subsets_within(g, mis, 2)
        rows.append(
            {
                "ranking": label,
                "trials": trials,
                "subsets_within_3_hops": within3,
                "subsets_within_2_hops": within2,
            }
        )
    return rows


@checker("F5")
def check_lemma3(rows: Rows) -> None:
    for row in rows:
        assert row["subsets_within_3_hops"] == row["trials"]
    assert any(row["subsets_within_2_hops"] < row["trials"] for row in rows)


@register(
    "F6",
    "Complementary subsets exactly 2 hops apart "
    "(level rank: always; id rank: sometimes not)",
    "Theorem 4: the level-based ranking guarantees 2-hop separation.",
)
def run_theorem4() -> Rows:
    rows = []
    for n, side in ((40, 4.2), (60, 5.0), (80, 6.5)):
        trials = 20
        level_ok = id_ok = 0
        for seed in range(trials):
            g = connected_random_udg(n, side, seed=seed)
            levels = bfs_distances(g, min(g.nodes()))
            level_mis = greedy_mis(g, level_ranking(g, levels))
            id_mis = greedy_mis(g)
            level_ok += complementary_subsets_within(g, level_mis, 2)
            id_ok += complementary_subsets_within(g, id_mis, 2)
        rows.append(
            {
                "workload": f"n={n} side={side}",
                "trials": trials,
                "levelrank_2hop_ok": level_ok,
                "idrank_2hop_ok": id_ok,
            }
        )
    return rows


@checker("F6")
def check_theorem4(rows: Rows) -> None:
    for row in rows:
        assert row["levelrank_2hop_ok"] == row["trials"]
    assert any(row["idrank_2hop_ok"] < row["trials"] for row in rows)
