"""Experiments F2a/F2b — Figure 2: a WCDS and its weakly induced graph.

A WCDS can be disconnected as a set while its black edges connect the
network — the relaxation that makes |MWCDS| ≤ |MCDS|.
"""

from __future__ import annotations

from repro.baselines import exact_minimum_cds, exact_minimum_wcds
from repro.experiments.base import Rows, checker, register
from repro.graphs import connected_random_udg, paper_figure2_udg
from repro.wcds import is_weakly_connected_dominating_set, weakly_induced_subgraph


@register(
    "F2a",
    "The paper's Figure 2 scenario",
    "{1, 2} is a WCDS that is not a CDS on the Figure 2 network.",
)
def run_figure2() -> Rows:
    g = paper_figure2_udg()
    wcds = {1, 2}
    spanner = weakly_induced_subgraph(g, wcds)
    return [
        {
            "nodes": g.num_nodes,
            "udg_edges": g.num_edges,
            "wcds": "{1, 2}",
            "is_wcds": is_weakly_connected_dominating_set(g, wcds),
            "set_is_connected": g.has_edge(1, 2),
            "black_edges": spanner.num_edges,
        }
    ]


@checker("F2a")
def check_figure2(rows: Rows) -> None:
    (row,) = rows
    assert row["is_wcds"]
    assert not row["set_is_connected"]


@register(
    "F2b",
    "Exact MWCDS vs exact MCDS on random 12-node UDGs",
    "|MWCDS| <= |MCDS| always; strictly smaller on many instances.",
)
def run_mwcds_vs_mcds() -> Rows:
    rows = []
    strictly_smaller = 0
    for seed in range(10):
        g = connected_random_udg(12, 2.6, seed=seed)
        mwcds = len(exact_minimum_wcds(g))
        mcds = len(exact_minimum_cds(g))
        strictly_smaller += mwcds < mcds
        rows.append({"seed": seed, "n": 12, "MWCDS": mwcds, "MCDS": mcds})
    rows.append(
        {"seed": "total<", "n": "", "MWCDS": strictly_smaller, "MCDS": "of 10"}
    )
    return rows


@checker("F2b")
def check_mwcds_vs_mcds(rows: Rows) -> None:
    for row in rows[:-1]:
        assert row["MWCDS"] <= row["MCDS"]
