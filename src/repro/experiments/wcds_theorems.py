"""Experiments T5/L7/T8/T10/T11 — the WCDS and spanner theorems.

T5: the level-ranked MIS is a WCDS (Algorithm I's correctness).
L7: Algorithm I's 5·opt approximation ratio, measured against exact.
T8: Algorithm I's spanner is sparse (≤ 5·#gray edges).
T10: Algorithm II's size (≤ 48·|S|) and edge (≤ 9·gray + 47·|S|) bounds.
T11: Algorithm II's spanner dilation (hop ≤ 3h+2, length ≤ 6l+5).
"""

from __future__ import annotations

from repro.baselines import exact_minimum_wcds
from repro.experiments.base import Rows, checker, register
from repro.graphs import (
    clustered_udg,
    connected_random_udg,
    grid_udg,
    is_connected,
    line_udg,
)
from repro.mis import is_maximal_independent_set
from repro.sim import SimConfig, UniformLatency
from repro.spanner import classify_black_edges, measure_dilation, sampled_dilation
from repro.wcds import (
    algorithm1_centralized,
    algorithm1_distributed,
    algorithm2_distributed,
    bounds,
    is_weakly_connected_dominating_set,
)


def _theorem5_instances():
    yield "uniform n=80", connected_random_udg(80, 6.0, seed=1)
    yield "uniform n=150", connected_random_udg(150, 8.0, seed=2)
    yield "grid 8x8", grid_udg(8, 8)
    yield "chain n=40", line_udg(40)
    clustered = clustered_udg(5, 12, side=6.0, seed=3)
    if is_connected(clustered):
        yield "clustered 5x12", clustered


@register(
    "T5",
    "Algorithm I output is an MIS that is a WCDS",
    "Theorem 5: level-ranked MIS is weakly-connected dominating.",
)
def run_theorem5() -> Rows:
    rows = []
    for label, g in _theorem5_instances():
        central = algorithm1_centralized(g)
        dist_sync = algorithm1_distributed(g)
        dist_async = algorithm1_distributed(
            g, sim=SimConfig(latency=UniformLatency(seed=4))
        )
        rows.append(
            {
                "workload": label,
                "n": g.num_nodes,
                "wcds_size": central.size,
                "is_mis": is_maximal_independent_set(g, set(central.dominators)),
                "central_is_wcds": is_weakly_connected_dominating_set(
                    g, central.dominators
                ),
                "sync_matches_central": dist_sync.dominators == central.dominators,
                "async_is_wcds": is_weakly_connected_dominating_set(
                    g, dist_async.dominators
                ),
            }
        )
    return rows


@checker("T5")
def check_theorem5(rows: Rows) -> None:
    for row in rows:
        assert row["is_mis"]
        assert row["central_is_wcds"]
        assert row["sync_matches_central"]
        assert row["async_is_wcds"]


@register(
    "L7",
    "Algorithm I size vs exact MWCDS (paper bound: 5x)",
    "Lemma 7: the level-ranked MIS is within 5x of the optimum.",
)
def run_lemma7() -> Rows:
    rows = []
    worst = 0.0
    for seed in range(12):
        g = connected_random_udg(14, 2.9, seed=seed)
        alg1 = algorithm1_centralized(g).size
        opt = len(exact_minimum_wcds(g))
        ratio = alg1 / opt
        worst = max(worst, ratio)
        rows.append({"seed": seed, "n": 14, "alg1": alg1, "opt": opt, "ratio": ratio})
    rows.append({"seed": "worst", "n": "", "alg1": "", "opt": "", "ratio": worst})
    return rows


@checker("L7")
def check_lemma7(rows: Rows) -> None:
    for row in rows[:-1]:
        assert row["alg1"] <= bounds.algorithm1_size_bound(row["opt"])
    assert rows[-1]["ratio"] <= bounds.ALGORITHM1_RATIO


@register(
    "T8",
    "Algorithm I spanner edges vs UDG edges, n=250 "
    "(paper: spanner <= 5*#gray, i.e. linear)",
    "Theorem 8: the black-edge subgraph is a sparse spanner.",
)
def run_theorem8() -> Rows:
    rows = []
    n = 250
    for side in (10.0, 8.0, 6.0, 5.0, 4.0):
        g = connected_random_udg(n, side, seed=3)
        result = algorithm1_centralized(g)
        counts = classify_black_edges(g, result)
        num_gray = len(result.gray_nodes(g))
        rows.append(
            {
                "avg_deg": round(2 * g.num_edges / n, 1),
                "udg_edges": g.num_edges,
                "spanner_edges": counts.total,
                "edges_per_node": counts.total / n,
                "bound_5gray": bounds.algorithm1_edge_bound(num_gray),
            }
        )
    return rows


@checker("T8")
def check_theorem8(rows: Rows) -> None:
    for row in rows:
        assert row["spanner_edges"] <= row["bound_5gray"]
        assert row["spanner_edges"] <= row["udg_edges"]
    first, last = rows[0], rows[-1]
    assert last["udg_edges"] > 3 * first["udg_edges"]
    assert last["edges_per_node"] < 3 * first["edges_per_node"] + 1


@register(
    "T10",
    "Algorithm II WCDS size (<=48|S|) and spanner edges "
    "(<=9 gray + 47|S|), n=250",
    "Theorem 10: constant-factor WCDS, linear-edge spanner.",
)
def run_theorem10() -> Rows:
    rows = []
    n = 250
    for side in (10.0, 8.0, 6.0, 5.0):
        g = connected_random_udg(n, side, seed=5)
        result = algorithm2_distributed(g)
        counts = classify_black_edges(g, result)
        mis_size = len(result.mis_dominators)
        num_gray = len(result.gray_nodes(g))
        rows.append(
            {
                "avg_deg": round(2 * g.num_edges / n, 1),
                "mis_S": mis_size,
                "connectors_C": len(result.additional_dominators),
                "U": result.size,
                "bound_48S": bounds.algorithm2_size_bound_from_mis(mis_size),
                "spanner_edges": counts.total,
                "edge_bound": bounds.algorithm2_edge_bound(num_gray, mis_size),
                "udg_edges": g.num_edges,
            }
        )
    return rows


@checker("T10")
def check_theorem10(rows: Rows) -> None:
    for row in rows:
        assert row["U"] <= row["bound_48S"]
        assert row["spanner_edges"] <= row["edge_bound"]
        assert row["spanner_edges"] <= row["udg_edges"]
        # Far below the proven 47|S|: in the sampled graphs each MIS
        # node nominates no more connectors than its Lemma 1 packing
        # allowance of independent neighbors.
        assert row["connectors_C"] <= bounds.mis_neighbors_bound() * row["mis_S"]


@register(
    "T11",
    "Spanner dilation (hop <= 3h+2, length <= 6l+5)",
    "Theorem 11: constant topological and geometric dilation.",
)
def run_theorem11() -> Rows:
    rows = []
    for n, side, mode in (
        (60, 5.0, "exact"),
        (100, 6.5, "exact"),
        (250, 10.0, "sampled"),
        # Affordable since the vector hop kernels took over the sweeps.
        (400, 12.5, "sampled"),
    ):
        worst_hop = worst_geo = 0.0
        hop_ok = geo_ok = True
        for seed in range(3):
            g = connected_random_udg(n, side, seed=seed)
            result = algorithm2_distributed(g)
            spanner = result.spanner(g)
            if mode == "exact":
                report = measure_dilation(g, spanner)
            else:
                report = sampled_dilation(g, spanner, num_sources=25, seed=seed)
            worst_hop = max(worst_hop, report.max_hop_ratio)
            worst_geo = max(worst_geo, report.max_geo_ratio)
            hop_ok &= report.hop_bound_holds
            geo_ok &= report.geo_bound_holds
        rows.append(
            {
                "workload": f"n={n} ({mode})",
                "max_hop_ratio": worst_hop,
                "hop_bound_3h+2": hop_ok,
                "max_geo_ratio": worst_geo,
                "geo_bound_6l+5": geo_ok,
            }
        )
    return rows


@checker("T11")
def check_theorem11(rows: Rows) -> None:
    for row in rows:
        assert row["hop_bound_3h+2"]
        assert row["geo_bound_6l+5"]
