"""Experiments T12a/T12b/T12c — time and message complexity.

Theorem 12: Algorithm II uses O(n) messages and O(n) time; §4.1 puts
Algorithm I at O(n log n) messages (election-dominated).  T12b compares
communication *volume* (payload entries) against distributed Wu-Li.
"""

from __future__ import annotations

from repro.baselines import wu_li_distributed
from repro.experiments.base import Rows, checker, register
from repro.graphs import connected_random_udg, line_udg
from repro.wcds import algorithm1_distributed, algorithm2_distributed


@register(
    "T12a",
    "Messages vs n (Alg II: O(n) msgs, flat msgs/node; "
    "Alg I: O(n log n), election-dominated)",
    "Theorem 12: Algorithm II sends O(1) messages per node.",
)
def run_message_sweep() -> Rows:
    rows = []
    for n in (50, 100, 200, 400):
        side = (n / 7.0) ** 0.5 * 1.87
        g = connected_random_udg(n, side, seed=2)
        alg1 = algorithm1_distributed(g)
        alg2 = algorithm2_distributed(g)
        alg2_stats = alg2.meta["stats"]
        rows.append(
            {
                "n": n,
                "alg1_msgs": alg1.meta["total_messages"],
                "alg1_msgs_per_n": alg1.meta["total_messages"] / n,
                "alg2_msgs": alg2_stats.messages_sent,
                "alg2_msgs_per_n": alg2_stats.messages_sent / n,
                "alg2_max_per_node": alg2_stats.max_messages_per_node(),
                "alg2_time": alg2_stats.finish_time,
            }
        )
    return rows


@checker("T12a")
def check_message_sweep(rows: Rows) -> None:
    per_node = [row["alg2_msgs_per_n"] for row in rows]
    assert max(per_node) / min(per_node) < 1.6
    for row in rows:
        assert row["alg2_max_per_node"] <= 60
        assert row["alg1_msgs"] > row["alg2_msgs"]


@register(
    "T12b",
    "Communication volume per node, n=200 (Alg II payloads are O(1); "
    "Wu-Li HELLO payloads are O(degree))",
    "Algorithm II's per-node communication volume is density-independent.",
)
def run_volume_sweep() -> Rows:
    rows = []
    n = 200
    for side in (9.0, 6.0, 4.5):
        g = connected_random_udg(n, side, seed=3)
        alg2_stats = algorithm2_distributed(g).meta["stats"]
        _, wu_li_stats = wu_li_distributed(g)
        rows.append(
            {
                "avg_deg": round(2 * g.num_edges / n, 1),
                "alg2_list_entries_per_n": alg2_stats.payload_entries / n,
                "wu_li_entries_per_n": wu_li_stats.payload_entries / n,
                "alg2_msgs": alg2_stats.messages_sent,
                "wu_li_msgs": wu_li_stats.messages_sent,
            }
        )
    return rows


@checker("T12b")
def check_volume_sweep(rows: Rows) -> None:
    alg2 = [row["alg2_list_entries_per_n"] for row in rows]
    wu_li = [row["wu_li_entries_per_n"] for row in rows]
    assert wu_li[-1] > 2 * wu_li[0]
    assert alg2[-1] < 2 * alg2[0] + 5
    assert wu_li[-1] > alg2[-1]


@register(
    "T12c",
    "Sequential chain worst case (time Theta(n), msgs O(n))",
    "Theorem 12's time worst case: ascending ids on a chain.",
)
def run_chain_worst_case() -> Rows:
    rows = []
    for n in (20, 40, 80):
        g = line_udg(n)
        stats = algorithm2_distributed(g).meta["stats"]
        rows.append(
            {
                "chain_n": n,
                "time": stats.finish_time,
                "time_per_n": stats.finish_time / n,
                "msgs_per_n": stats.messages_sent / n,
            }
        )
    return rows


@checker("T12c")
def check_chain_worst_case(rows: Rows) -> None:
    times = [row["time_per_n"] for row in rows]
    assert max(times) / min(times) < 1.5
    assert max(row["msgs_per_n"] for row in rows) < 8.0
