"""Experiment registry.

Every experiment from DESIGN.md's index is a first-class object: an id
(the figure/theorem it reproduces), a title, a ``run`` callable that
returns result rows, and a ``check`` callable that asserts the paper's
claim on those rows.  The benchmarks time ``run`` and re-use ``check``;
the CLI (``repro experiment``) runs them interactively; users can call
them programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence

Rows = Sequence[Mapping[str, object]]


@dataclass(frozen=True)
class Experiment:
    """One reproducible experiment."""

    experiment_id: str
    title: str
    claim: str
    run: Callable[[], Rows]
    check: Callable[[Rows], None]

    def execute(self) -> Rows:
        """Run and verify; returns the rows."""
        rows = self.run()
        self.check(rows)
        return rows


#: Global registry, populated by the experiment modules at import time.
REGISTRY: Dict[str, Experiment] = {}


def register(
    experiment_id: str, title: str, claim: str
) -> Callable[[Callable[[], Rows]], Callable[[], Rows]]:
    """Decorator: register ``run`` under ``experiment_id``.

    The decorated module must separately attach a checker via
    :func:`checker`; registration completes when both are present.
    """

    def decorate(run: Callable[[], Rows]) -> Callable[[], Rows]:
        REGISTRY[experiment_id] = Experiment(
            experiment_id=experiment_id,
            title=title,
            claim=claim,
            run=run,
            check=lambda rows: None,
        )
        return run

    return decorate


def checker(experiment_id: str):
    """Decorator: attach the claim checker to a registered experiment."""

    def decorate(check: Callable[[Rows], None]) -> Callable[[Rows], None]:
        existing = REGISTRY[experiment_id]
        REGISTRY[experiment_id] = Experiment(
            experiment_id=existing.experiment_id,
            title=existing.title,
            claim=existing.claim,
            run=existing.run,
            check=check,
        )
        return check

    return decorate


def get(experiment_id: str) -> Experiment:
    """Look up an experiment by id (raises ``KeyError`` if unknown)."""
    return REGISTRY[experiment_id]


def all_experiments() -> List[Experiment]:
    """All registered experiments, sorted by id."""
    return [REGISTRY[key] for key in sorted(REGISTRY)]
