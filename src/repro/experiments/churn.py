"""Experiments M2/M3 — churn and mobility-model robustness.

M2: §4.2 also promises maintenance when nodes "are turned off or on";
random on/off churn storms must keep the WCDS valid with local repairs.
M3: the locality and validity results must not be artifacts of the
random-waypoint model — re-run under random-direction and Gauss-Markov.
"""

from __future__ import annotations

import random

from repro.experiments.base import Rows, checker, register
from repro.geometry import Point
from repro.graphs import connected_random_udg
from repro.mobility import (
    GaussMarkovModel,
    MaintainedWCDS,
    RandomDirectionModel,
    RandomWaypointModel,
)


@register(
    "M2",
    "WCDS maintenance under node on/off churn (40 events per trial)",
    "Section 4.2: the backbone survives radios turning off and on, "
    "with domination and weak connectivity after every event.",
)
def run_churn() -> Rows:
    rows = []
    for seed in range(4):
        rng = random.Random(seed)
        g = connected_random_udg(40, 4.5, seed=seed)
        maintained = MaintainedWCDS(g)
        alive = set(g.nodes())
        next_id = 1000
        events = 40
        valid = 0
        dominator_departures = 0
        for _ in range(events):
            if rng.random() < 0.5 and len(alive) > 8:
                victim = rng.choice(sorted(alive))
                dominator_departures += victim in maintained.mis
                maintained.node_off(victim)
                alive.discard(victim)
            else:
                maintained.node_on(
                    next_id, Point(rng.uniform(0, 4.5), rng.uniform(0, 4.5))
                )
                alive.add(next_id)
                next_id += 1
            valid += maintained.is_valid()
        rows.append(
            {
                "seed": seed,
                "events": events,
                "valid_after_event": valid,
                "dominator_departures": dominator_departures,
                "final_n": len(alive),
                "final_backbone": maintained.result().size,
            }
        )
    return rows


@checker("M2")
def check_churn(rows: Rows) -> None:
    for row in rows:
        assert row["valid_after_event"] == row["events"]
        # The storms actually stressed the interesting case.
        assert row["dominator_departures"] >= 1


@register(
    "M3",
    "Maintenance validity across mobility models (20 steps x 3 seeds)",
    "The maintenance results hold under random waypoint, random "
    "direction, and Gauss-Markov mobility alike.",
)
def run_models() -> Rows:
    rows = []
    side = 4.5
    factories = {
        "random waypoint": lambda g, s: RandomWaypointModel(
            g, side, speed_range=(0.05, 0.2), seed=s
        ),
        "random direction": lambda g, s: RandomDirectionModel(
            g, side, speed_range=(0.05, 0.2), seed=s
        ),
        "gauss-markov": lambda g, s: GaussMarkovModel(
            g, side, mean_speed=0.12, seed=s
        ),
    }
    for label, factory in factories.items():
        valid = steps_total = 0
        max_locality = 0
        for seed in range(3):
            g = connected_random_udg(40, side, seed=seed)
            maintained = MaintainedWCDS(g)
            model = factory(g, seed)
            for _ in range(20):
                report = maintained.apply_events(model.step())
                max_locality = max(max_locality, report.max_distance_to_event)
                valid += maintained.is_valid()
                steps_total += 1
        rows.append(
            {
                "model": label,
                "steps": steps_total,
                "valid_steps": valid,
                "max_locality_hops": max_locality,
            }
        )
    return rows


@checker("M3")
def check_models(rows: Rows) -> None:
    for row in rows:
        assert row["valid_steps"] == row["steps"]
        assert row["max_locality_hops"] <= 4
