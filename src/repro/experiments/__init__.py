"""The experiment suite: every figure and theorem of the paper as a
runnable, checkable object.

Importing this package populates :data:`repro.experiments.REGISTRY`;
the benchmarks in ``benchmarks/`` time these same ``run`` functions and
re-use their ``check`` assertions, and the CLI exposes them via
``repro experiment``.
"""

from repro.experiments.base import (
    Experiment,
    REGISTRY,
    all_experiments,
    get,
)

# Importing the modules registers their experiments.
from repro.experiments import (  # noqa: F401  (imported for side effects)
    ablations,
    applications,
    churn,
    complexity,
    fig1,
    fig2,
    maintenance_protocol,
    mis_lemmas,
    wcds_theorems,
)

__all__ = ["Experiment", "REGISTRY", "all_experiments", "get"]
