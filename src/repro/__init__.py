"""repro — Weakly-Connected Dominating Sets and Sparse Spanners in
Wireless Ad Hoc Networks.

A full reproduction of Alzoubi, Wan & Frieder (ICDCS 2003): unit-disk
graph model, distributed MIS construction, the two WCDS algorithms with
their sparse spanners, dilation and sparsity measurement, clusterhead
routing, baselines, and mobility maintenance.

Quickstart::

    from repro import connected_random_udg, algorithm2_distributed

    network = connected_random_udg(num_nodes=200, side=10.0, seed=7)
    wcds = algorithm2_distributed(network)
    backbone = wcds.dominators          # the virtual backbone
    spanner = wcds.spanner(network)     # the black-edge sparse spanner
"""

from repro.graphs import (
    Graph,
    UnitDiskGraph,
    build_udg,
    clustered_udg,
    connected_random_udg,
    grid_udg,
    line_udg,
    paper_figure2_udg,
    perturbed_grid_udg,
    uniform_random_udg,
)
from repro.mis import (
    distributed_mis,
    greedy_mis,
    is_dominating_set,
    is_independent_set,
    is_maximal_independent_set,
)
from repro.wcds import (
    WCDSResult,
    algorithm1_centralized,
    algorithm1_distributed,
    algorithm2_centralized,
    algorithm2_distributed,
    is_weakly_connected_dominating_set,
    weakly_induced_subgraph,
)
from repro.spanner import measure_dilation, sampled_dilation, sparsity_report
from repro.routing import (
    ClusterheadRouter,
    backbone_broadcast,
    blind_flood,
    spanner_route,
)
from repro.election import elect_leader
from repro.mobility import MaintainedWCDS, RandomWaypointModel
from repro.obs import (
    MessageCostReport,
    MetricsRegistry,
    Tracer,
    get_tracer,
    measure_message_costs,
    set_tracer,
)
from repro.service import BackboneService, ServiceConfig

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "UnitDiskGraph",
    "build_udg",
    "clustered_udg",
    "connected_random_udg",
    "grid_udg",
    "line_udg",
    "paper_figure2_udg",
    "perturbed_grid_udg",
    "uniform_random_udg",
    "distributed_mis",
    "greedy_mis",
    "is_dominating_set",
    "is_independent_set",
    "is_maximal_independent_set",
    "WCDSResult",
    "algorithm1_centralized",
    "algorithm1_distributed",
    "algorithm2_centralized",
    "algorithm2_distributed",
    "is_weakly_connected_dominating_set",
    "weakly_induced_subgraph",
    "measure_dilation",
    "sampled_dilation",
    "sparsity_report",
    "ClusterheadRouter",
    "backbone_broadcast",
    "blind_flood",
    "spanner_route",
    "elect_leader",
    "MaintainedWCDS",
    "RandomWaypointModel",
    "BackboneService",
    "ServiceConfig",
    "MessageCostReport",
    "MetricsRegistry",
    "Tracer",
    "get_tracer",
    "measure_message_costs",
    "set_tracer",
    "__version__",
]
