"""Minimal SVG writer — no third-party dependencies.

The figure renderer (:mod:`repro.viz.figures`) draws networks, WCDS
colorings, spanners and routes; this module is the tiny drawing surface
underneath it.  Elements are accumulated and serialized on demand; all
coordinates are in user units and mapped through a viewBox.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


def _fmt(value: float) -> str:
    """Compact numeric formatting for attribute values."""
    text = f"{value:.3f}"
    return text.rstrip("0").rstrip(".") if "." in text else text


class SvgCanvas:
    """An append-only SVG document builder."""

    def __init__(
        self,
        width: float,
        height: float,
        viewbox: Optional[Tuple[float, float, float, float]] = None,
        background: Optional[str] = "white",
    ) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("canvas dimensions must be positive")
        self.width = width
        self.height = height
        self.viewbox = viewbox if viewbox is not None else (0, 0, width, height)
        self._elements: List[str] = []
        if background:
            vx, vy, vw, vh = self.viewbox
            self._elements.append(
                f'<rect x="{_fmt(vx)}" y="{_fmt(vy)}" width="{_fmt(vw)}" '
                f'height="{_fmt(vh)}" fill="{background}"/>'
            )

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def line(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        stroke: str = "black",
        width: float = 0.02,
        dashed: bool = False,
        opacity: float = 1.0,
    ) -> None:
        """A straight line segment."""
        dash = ' stroke-dasharray="0.06,0.05"' if dashed else ""
        alpha = f' stroke-opacity="{_fmt(opacity)}"' if opacity < 1 else ""
        self._elements.append(
            f'<line x1="{_fmt(x1)}" y1="{_fmt(y1)}" x2="{_fmt(x2)}" '
            f'y2="{_fmt(y2)}" stroke="{stroke}" '
            f'stroke-width="{_fmt(width)}"{dash}{alpha}/>'
        )

    def circle(
        self,
        cx: float,
        cy: float,
        r: float,
        fill: str = "black",
        stroke: Optional[str] = None,
        stroke_width: float = 0.02,
    ) -> None:
        """A filled circle (a network node)."""
        edge = (
            f' stroke="{stroke}" stroke-width="{_fmt(stroke_width)}"'
            if stroke
            else ""
        )
        self._elements.append(
            f'<circle cx="{_fmt(cx)}" cy="{_fmt(cy)}" r="{_fmt(r)}" '
            f'fill="{fill}"{edge}/>'
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        size: float = 0.18,
        fill: str = "black",
        anchor: str = "middle",
    ) -> None:
        """A text label."""
        escaped = (
            str(content)
            .replace("&", "&amp;")
            .replace("<", "&lt;")
            .replace(">", "&gt;")
        )
        self._elements.append(
            f'<text x="{_fmt(x)}" y="{_fmt(y)}" font-size="{_fmt(size)}" '
            f'fill="{fill}" text-anchor="{anchor}" '
            f'font-family="sans-serif">{escaped}</text>'
        )

    def polyline(
        self,
        points: Sequence[Tuple[float, float]],
        stroke: str = "red",
        width: float = 0.04,
        opacity: float = 0.9,
    ) -> None:
        """An open polyline (a routed path)."""
        coords = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        self._elements.append(
            f'<polyline points="{coords}" fill="none" stroke="{stroke}" '
            f'stroke-width="{_fmt(width)}" stroke-opacity="{_fmt(opacity)}"/>'
        )

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def to_string(self) -> str:
        """Serialize the document."""
        vx, vy, vw, vh = self.viewbox
        header = (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{_fmt(self.width)}" height="{_fmt(self.height)}" '
            f'viewBox="{_fmt(vx)} {_fmt(vy)} {_fmt(vw)} {_fmt(vh)}">'
        )
        return "\n".join([header, *self._elements, "</svg>"])

    def save(self, path: str) -> None:
        """Write the document to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_string())

    @property
    def num_elements(self) -> int:
        """Number of drawn elements (background excluded)."""
        return len(self._elements) - (
            1 if self._elements and self._elements[0].startswith("<rect") else 0
        )
