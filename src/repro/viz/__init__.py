"""SVG visualization: regenerate the paper's figures without any
plotting dependency."""

from repro.viz.svg import SvgCanvas
from repro.viz.figures import draw_levels, draw_route, draw_udg, draw_wcds

__all__ = ["SvgCanvas", "draw_levels", "draw_route", "draw_udg", "draw_wcds"]
