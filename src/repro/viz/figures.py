"""Network figure rendering: regenerate the paper's illustrations.

Renders unit-disk graphs with WCDS colorings into standalone SVG files:

* :func:`draw_udg` — Figure 1: the raw unit-disk graph;
* :func:`draw_wcds` — Figure 2: dominators (black), gray nodes, black
  edges solid / white edges dashed;
* :func:`draw_route` — a routed path over the spanner (§4.2);
* :func:`draw_levels` — Figure 6's level-based ranks as labels.

Colors follow the paper's vocabulary: MIS-dominators are black,
additional-dominators dark blue, dominated nodes gray.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Optional, Sequence

from repro.graphs.udg import UnitDiskGraph
from repro.viz.svg import SvgCanvas
from repro.wcds.base import WCDSResult

MIS_COLOR = "#111111"
ADDITIONAL_COLOR = "#1f4e8c"
GRAY_COLOR = "#b9b9b9"
EDGE_COLOR = "#888888"
BLACK_EDGE_COLOR = "#111111"
ROUTE_COLOR = "#c0392b"

NODE_RADIUS = 0.09
PIXELS_PER_UNIT = 90


def _canvas_for(udg: UnitDiskGraph, margin: float = 0.4) -> SvgCanvas:
    xs = [p.x for p in udg.positions.values()] or [0.0]
    ys = [p.y for p in udg.positions.values()] or [0.0]
    min_x, max_x = min(xs) - margin, max(xs) + margin
    min_y, max_y = min(ys) - margin, max(ys) + margin
    width = (max_x - min_x) * PIXELS_PER_UNIT
    height = (max_y - min_y) * PIXELS_PER_UNIT
    return SvgCanvas(
        width, height, viewbox=(min_x, min_y, max_x - min_x, max_y - min_y)
    )


def draw_udg(
    udg: UnitDiskGraph,
    labels: bool = False,
) -> SvgCanvas:
    """Figure 1: nodes and unit-disk edges."""
    canvas = _canvas_for(udg)
    for u, v in udg.edges():
        pu, pv = udg.positions[u], udg.positions[v]
        canvas.line(pu.x, pu.y, pv.x, pv.y, stroke=EDGE_COLOR)
    for node, pos in udg.positions.items():
        canvas.circle(pos.x, pos.y, NODE_RADIUS, fill=GRAY_COLOR, stroke="#555")
        if labels:
            canvas.text(pos.x, pos.y - 0.15, str(node))
    return canvas


def draw_wcds(
    udg: UnitDiskGraph,
    result: WCDSResult,
    labels: bool = False,
) -> SvgCanvas:
    """Figure 2: WCDS coloring and the weakly induced (black) edges."""
    canvas = _canvas_for(udg)
    dominators = set(result.dominators)
    # White edges first (dashed, underneath), then black edges.
    for u, v in udg.edges():
        if u in dominators or v in dominators:
            continue
        pu, pv = udg.positions[u], udg.positions[v]
        canvas.line(pu.x, pu.y, pv.x, pv.y, stroke=EDGE_COLOR, dashed=True, opacity=0.6)
    for u, v in udg.edges():
        if u not in dominators and v not in dominators:
            continue
        pu, pv = udg.positions[u], udg.positions[v]
        canvas.line(pu.x, pu.y, pv.x, pv.y, stroke=BLACK_EDGE_COLOR, width=0.03)
    for node, pos in udg.positions.items():
        if node in result.mis_dominators:
            fill = MIS_COLOR
        elif node in result.additional_dominators:
            fill = ADDITIONAL_COLOR
        else:
            fill = GRAY_COLOR
        canvas.circle(pos.x, pos.y, NODE_RADIUS, fill=fill, stroke="#333")
        if labels:
            canvas.text(pos.x, pos.y - 0.15, str(node))
    return canvas


def draw_route(
    udg: UnitDiskGraph,
    result: WCDSResult,
    path: Sequence[Hashable],
    labels: bool = False,
) -> SvgCanvas:
    """A routed path highlighted over the WCDS spanner."""
    canvas = draw_wcds(udg, result, labels=labels)
    points = [(udg.positions[n].x, udg.positions[n].y) for n in path]
    canvas.polyline(points, stroke=ROUTE_COLOR)
    if path:
        first = udg.positions[path[0]]
        last = udg.positions[path[-1]]
        canvas.circle(first.x, first.y, NODE_RADIUS * 1.4, fill="none", stroke=ROUTE_COLOR, stroke_width=0.03)
        canvas.circle(last.x, last.y, NODE_RADIUS * 1.4, fill="none", stroke=ROUTE_COLOR, stroke_width=0.03)
    return canvas


def draw_levels(
    udg: UnitDiskGraph,
    levels: Mapping[Hashable, int],
    mis: Optional[set] = None,
) -> SvgCanvas:
    """Figure 6: the (level, id) ranks printed next to each node."""
    canvas = _canvas_for(udg)
    for u, v in udg.edges():
        pu, pv = udg.positions[u], udg.positions[v]
        canvas.line(pu.x, pu.y, pv.x, pv.y, stroke=EDGE_COLOR)
    for node, pos in udg.positions.items():
        fill = MIS_COLOR if mis and node in mis else GRAY_COLOR
        canvas.circle(pos.x, pos.y, NODE_RADIUS, fill=fill, stroke="#333")
        canvas.text(pos.x, pos.y - 0.16, f"({levels[node]}, {node})", size=0.14)
    return canvas
