"""Leader election and spanning-tree construction.

Algorithm I's first phase elects a leader and builds a spanning tree
rooted at it (the paper adopts Cidon & Mokryn's broadcast-environment
election).  This package implements a min-id flooding election whose
message count is O(n log n) in expectation on randomly-ordered ids, and
which yields the rooted tree (parent and children pointers) the level
calculation phase needs.
"""

from repro.election.protocol import (
    ElectionNode,
    ElectionResult,
    elect_leader,
)
from repro.election.convergecast import (
    ConvergecastNode,
    converge_cast,
    count_nodes,
    tree_maximum,
)

__all__ = [
    "ElectionNode",
    "ElectionResult",
    "elect_leader",
    "ConvergecastNode",
    "converge_cast",
    "count_nodes",
    "tree_maximum",
]
