"""Tree aggregation (convergecast) over the election spanning tree.

Algorithm I's COMPLETE echo is one instance of a general pattern the
backbone enables: aggregate a value up the rooted spanning tree in O(n)
messages.  This module provides the general protocol — each leaf sends
its value; each internal node waits for all children, combines, and
forwards — used for network-size counting, maximum-load queries, or any
commutative/associative reduction.

O(n) messages (one AGGREGATE unicast per non-root node) and O(depth)
time, the textbook convergecast costs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Hashable, Optional, Tuple

from repro.graphs.graph import Graph
from repro.election.protocol import ElectionResult, elect_leader
from repro.sim.config import SimConfig, coerce_sim_config
from repro.sim.batched import make_simulator
from repro.sim.messages import Message
from repro.sim.node import NodeContext, ProtocolNode
from repro.sim.stats import SimStats

AGGREGATE = "AGGREGATE"

Combine = Callable[[Any, Any], Any]


class ConvergecastNode(ProtocolNode):
    """One node of the tree aggregation."""

    def __init__(
        self,
        ctx: NodeContext,
        parent: Optional[Hashable],
        children: FrozenSet[Hashable],
        value: Any,
        combine: Combine,
    ) -> None:
        super().__init__(ctx)
        self.parent = parent
        self.children = set(children)
        self.combine = combine
        self.accumulator = value
        self._pending = set(children)
        self.done = False

    def on_start(self) -> None:
        self._maybe_forward()

    def on_message(self, msg: Message) -> None:
        if msg.kind != AGGREGATE or msg.sender not in self._pending:
            return
        self._pending.discard(msg.sender)
        self.accumulator = self.combine(self.accumulator, msg["value"])
        self._maybe_forward()

    def on_neighbor_down(self, peer: Hashable) -> None:
        """Transport liveness hook: a dead child's value is lost but
        the aggregation still completes on the survivors."""
        if peer in self._pending:
            self._pending.discard(peer)
            self._maybe_forward()

    def _maybe_forward(self) -> None:
        if self._pending or self.done:
            return
        self.done = True
        if self.parent is not None:
            self.ctx.send(self.parent, AGGREGATE, value=self.accumulator)

    def result(self) -> Dict[str, object]:
        return {"value": self.accumulator, "done": self.done}


def converge_cast(
    graph: Graph,
    values: Dict[Hashable, Any],
    combine: Combine,
    *,
    election: Optional[ElectionResult] = None,
    sim: Optional[SimConfig] = None,
    **legacy: Any,
) -> Tuple[Any, SimStats]:
    """Aggregate ``values`` up the spanning tree; returns the root's
    combined value and the run's stats.

    ``combine`` must be commutative and associative (children arrive in
    arbitrary order).  An existing :class:`ElectionResult` can be
    reused; otherwise a fresh election runs first (its messages are not
    counted in the returned stats — pass the election in to amortize).
    """
    config = coerce_sim_config(sim, legacy, "converge_cast")
    if set(values) != set(graph.nodes()):
        raise ValueError("values must cover every node exactly")
    if election is None:
        election = elect_leader(graph, sim=config)
    simulator = make_simulator(
        graph,
        lambda ctx: ConvergecastNode(
            ctx,
            election.parent.get(ctx.node_id),
            election.children.get(ctx.node_id, frozenset()),
            values[ctx.node_id],
            combine,
        ),
        config,
    )
    stats = simulator.run()
    results = simulator.collect_results()
    if not results[election.leader]["done"]:
        raise RuntimeError("aggregation never completed at the root")
    return results[election.leader]["value"], stats


def count_nodes(graph: Graph, **kwargs) -> Tuple[int, SimStats]:
    """Network-size estimation: every node contributes 1."""
    values = {node: 1 for node in graph.nodes()}
    return converge_cast(graph, values, lambda a, b: a + b, **kwargs)


def tree_maximum(graph: Graph, values: Dict[Hashable, Any], **kwargs):
    """Maximum of per-node values (e.g. battery load, queue depth)."""
    return converge_cast(graph, values, max, **kwargs)
