"""Distributed leader election with spanning-tree construction.

The protocol is extinction ("wave") election by minimum id:

* every node starts as its own candidate and broadcasts ``ELECT`` with
  the best (smallest) leader id it knows;
* a node hearing a smaller id adopts it, re-parents onto the neighbor it
  heard it from (unicasting ``JOIN`` to the new parent and ``LEAVE`` to
  the old one so children sets stay consistent), and re-broadcasts;
* at quiescence exactly one node still believes in itself — the minimum
  id node — and the parent pointers form a spanning tree rooted there.
  Under the synchronous (fixed-latency) model the tree is the BFS tree
  of the leader, so tree levels equal hop distances from the root.

Each node transmits one ``ELECT`` per improvement of its best-known id.
With ids in random order a node improves O(log n) times in expectation,
matching the O(n log n) message bound the paper cites for election; the
adversarial worst case (ids decreasing along a chain) is Θ(n) per node,
which the complexity benchmark demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Optional, Set, Tuple

from typing import Any

from repro.graphs.graph import Graph, canonical_order
from repro.graphs.traversal import is_connected
from repro.sim.config import SimConfig, coerce_sim_config
from repro.sim.batched import make_simulator
from repro.sim.messages import Message
from repro.sim.node import NodeContext, ProtocolNode
from repro.sim.stats import SimStats

ELECT = "ELECT"
JOIN = "JOIN"
LEAVE = "LEAVE"
PROBE = "PROBE"


class ElectionNode(ProtocolNode):
    """Per-node state machine for min-id extinction election."""

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        self.best: Hashable = self.node_id
        self.parent: Optional[Hashable] = None
        self.children: Set[Hashable] = set()
        # Re-parenting emits JOIN/LEAVE unicasts that can overtake each
        # other under asynchrony; a per-sender sequence number lets the
        # receiver keep only the newest membership statement per child.
        self._seq = 0
        self._child_seq: Dict[Hashable, int] = {}

    def on_start(self) -> None:
        self.ctx.broadcast(ELECT, leader=self.best)

    def on_message(self, msg: Message) -> None:
        if msg.kind == ELECT:
            self._on_elect(msg.sender, msg["leader"])
        elif msg.kind == PROBE:
            # An orphaned neighbor asks its vicinity to re-announce so
            # it can re-attach; answering costs one broadcast.
            self.ctx.broadcast(ELECT, leader=self.best)
        elif msg.kind in (JOIN, LEAVE):
            if msg["seq"] <= self._child_seq.get(msg.sender, -1):
                return  # stale statement overtaken by a newer one
            self._child_seq[msg.sender] = msg["seq"]
            if msg.kind == JOIN:
                self.children.add(msg.sender)
            else:
                self.children.discard(msg.sender)

    def on_neighbor_down(self, peer: Hashable) -> None:
        """Transport liveness hook: drop a dead child; if the dead peer
        was our parent, orphan ourselves and probe for a new one."""
        self.children.discard(peer)
        if self.parent == peer:
            self.parent = None
            self.ctx.broadcast(PROBE)

    def _on_elect(self, sender: Hashable, leader: Hashable) -> None:
        if leader >= self.best:
            # Re-attachment after our parent crashed: an equally-good
            # announcement from a non-child neighbor is a valid parent.
            # (A descendant could answer and form a cycle; the
            # validation below catches that and the chaos harness
            # restarts the epoch.)
            if (
                leader == self.best
                and self.parent is None
                and self.best != self.node_id
                and sender not in self.children
            ):
                self.parent = sender
                self._seq += 1
                self.ctx.send(sender, JOIN, seq=self._seq)
            return
        self.best = leader
        if self.parent is not None:
            self._seq += 1
            self.ctx.send(self.parent, LEAVE, seq=self._seq)
        self.parent = sender
        self._seq += 1
        self.ctx.send(sender, JOIN, seq=self._seq)
        self.ctx.broadcast(ELECT, leader=self.best)

    def result(self) -> Dict[str, object]:
        return {
            "leader": self.best,
            "parent": self.parent,
            "children": frozenset(self.children),
        }


@dataclass(frozen=True)
class ElectionResult:
    """Outcome of a leader-election run."""

    leader: Hashable
    parent: Dict[Hashable, Optional[Hashable]]
    children: Dict[Hashable, FrozenSet[Hashable]]
    stats: SimStats
    crashed: FrozenSet[Hashable] = frozenset()

    def levels(self) -> Dict[Hashable, int]:
        """Tree depth of every node (root at level 0).

        Computed by walking parent pointers with memoization; in a real
        deployment the nodes learn this in the level calculation phase,
        which :mod:`repro.wcds.algorithm1` simulates explicitly.
        """
        depths: Dict[Hashable, int] = {self.leader: 0}

        def depth(node: Hashable) -> int:
            trail = []
            current = node
            while current not in depths:
                trail.append(current)
                current = self.parent[current]
            base = depths[current]
            for offset, item in enumerate(reversed(trail), start=1):
                depths[item] = base + offset
            return depths[node]

        for node in self.parent:
            depth(node)
        return depths


def elect_leader(
    graph: Graph,
    *,
    sim: Optional[SimConfig] = None,
    registry=None,
    **legacy: Any,
) -> ElectionResult:
    """Run the election protocol to quiescence on a connected graph.

    Returns the elected leader (the minimum node id), the spanning-tree
    parent/children pointers, and the run's message statistics.  A
    ``registry`` (:class:`repro.obs.MetricsRegistry`) additionally
    receives per-kind ``sim_messages_total`` counters.

    Under a faulty :class:`SimConfig` (loss or a fault plan) the
    convergence checks are restricted to the surviving nodes, and the
    tree is validated by reachability from the root over survivor
    child pointers; a broken tree raises ``RuntimeError`` (the chaos
    harness catches it and restarts the epoch on the survivors).
    """
    config = coerce_sim_config(sim, legacy, "elect_leader")
    if graph.num_nodes == 0:
        raise ValueError("cannot elect a leader of an empty graph")
    if not is_connected(graph):
        raise ValueError("leader election requires a connected graph")
    simulator = make_simulator(graph, ElectionNode, config, registry=registry)
    stats = simulator.run()
    results = simulator.collect_results()
    crashed = simulator.crashed
    survivors = [n for n in graph.nodes() if n not in crashed]
    if not survivors:
        raise RuntimeError("every node crashed during the election")
    leaders = {results[n]["leader"] for n in survivors}
    if len(leaders) != 1:
        raise RuntimeError(f"election did not converge: leaders={leaders!r}")
    (leader,) = leaders
    parent = {node: results[node]["parent"] for node in survivors}
    children = {node: results[node]["children"] for node in survivors}
    if config.faulty:
        _validate_surviving_tree(leader, parent, children)
    else:
        _validate_tree(graph, leader, parent, children)
    return ElectionResult(
        leader=leader, parent=parent, children=children, stats=stats,
        crashed=crashed,
    )


def _validate_surviving_tree(
    leader: Hashable,
    parent: Dict[Hashable, Optional[Hashable]],
    children: Dict[Hashable, FrozenSet[Hashable]],
) -> None:
    """Check every survivor hangs off the root via survivor tree edges.

    Orphans (parent crashed and never re-attached) and parent cycles
    both show up as unreachable nodes.
    """
    survivors = set(parent)
    if leader not in survivors:
        raise RuntimeError("elected leader crashed")
    reached = {leader}
    frontier = [leader]
    while frontier:
        node = frontier.pop()
        for child in canonical_order(children.get(node, frozenset())):
            if child in survivors and child not in reached and parent[child] == node:
                reached.add(child)
                frontier.append(child)
    missing = survivors - reached
    if missing:
        raise RuntimeError(
            f"election tree broken by faults: unreachable={sorted(map(repr, missing))!r}"
        )


def _validate_tree(
    graph: Graph,
    leader: Hashable,
    parent: Dict[Hashable, Optional[Hashable]],
    children: Dict[Hashable, FrozenSet[Hashable]],
) -> None:
    """Sanity-check the parent/children pointers form a spanning tree."""
    if parent[leader] is not None:
        raise RuntimeError("leader ended up with a parent")
    for node, par in parent.items():
        if node == leader:
            continue
        if par is None:
            raise RuntimeError(f"non-leader {node!r} has no parent")
        if not graph.has_edge(node, par):
            raise RuntimeError(f"tree edge ({node!r}, {par!r}) not in graph")
        if node not in children[par]:
            raise RuntimeError(f"child pointer missing: {par!r} -> {node!r}")
