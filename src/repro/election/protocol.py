"""Distributed leader election with spanning-tree construction.

The protocol is extinction ("wave") election by minimum id:

* every node starts as its own candidate and broadcasts ``ELECT`` with
  the best (smallest) leader id it knows;
* a node hearing a smaller id adopts it, re-parents onto the neighbor it
  heard it from (unicasting ``JOIN`` to the new parent and ``LEAVE`` to
  the old one so children sets stay consistent), and re-broadcasts;
* at quiescence exactly one node still believes in itself — the minimum
  id node — and the parent pointers form a spanning tree rooted there.
  Under the synchronous (fixed-latency) model the tree is the BFS tree
  of the leader, so tree levels equal hop distances from the root.

Each node transmits one ``ELECT`` per improvement of its best-known id.
With ids in random order a node improves O(log n) times in expectation,
matching the O(n log n) message bound the paper cites for election; the
adversarial worst case (ids decreasing along a chain) is Θ(n) per node,
which the complexity benchmark demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Optional, Set, Tuple

from repro.graphs.graph import Graph
from repro.graphs.traversal import is_connected
from repro.sim.engine import Simulator
from repro.sim.latency import LatencyModel
from repro.sim.messages import Message
from repro.sim.node import NodeContext, ProtocolNode
from repro.sim.stats import SimStats

ELECT = "ELECT"
JOIN = "JOIN"
LEAVE = "LEAVE"


class ElectionNode(ProtocolNode):
    """Per-node state machine for min-id extinction election."""

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        self.best: Hashable = self.node_id
        self.parent: Optional[Hashable] = None
        self.children: Set[Hashable] = set()
        # Re-parenting emits JOIN/LEAVE unicasts that can overtake each
        # other under asynchrony; a per-sender sequence number lets the
        # receiver keep only the newest membership statement per child.
        self._seq = 0
        self._child_seq: Dict[Hashable, int] = {}

    def on_start(self) -> None:
        self.ctx.broadcast(ELECT, leader=self.best)

    def on_message(self, msg: Message) -> None:
        if msg.kind == ELECT:
            self._on_elect(msg.sender, msg["leader"])
        elif msg.kind in (JOIN, LEAVE):
            if msg["seq"] <= self._child_seq.get(msg.sender, -1):
                return  # stale statement overtaken by a newer one
            self._child_seq[msg.sender] = msg["seq"]
            if msg.kind == JOIN:
                self.children.add(msg.sender)
            else:
                self.children.discard(msg.sender)

    def _on_elect(self, sender: Hashable, leader: Hashable) -> None:
        if leader >= self.best:
            return
        self.best = leader
        if self.parent is not None:
            self._seq += 1
            self.ctx.send(self.parent, LEAVE, seq=self._seq)
        self.parent = sender
        self._seq += 1
        self.ctx.send(sender, JOIN, seq=self._seq)
        self.ctx.broadcast(ELECT, leader=self.best)

    def result(self) -> Dict[str, object]:
        return {
            "leader": self.best,
            "parent": self.parent,
            "children": frozenset(self.children),
        }


@dataclass(frozen=True)
class ElectionResult:
    """Outcome of a leader-election run."""

    leader: Hashable
    parent: Dict[Hashable, Optional[Hashable]]
    children: Dict[Hashable, FrozenSet[Hashable]]
    stats: SimStats

    def levels(self) -> Dict[Hashable, int]:
        """Tree depth of every node (root at level 0).

        Computed by walking parent pointers with memoization; in a real
        deployment the nodes learn this in the level calculation phase,
        which :mod:`repro.wcds.algorithm1` simulates explicitly.
        """
        depths: Dict[Hashable, int] = {self.leader: 0}

        def depth(node: Hashable) -> int:
            trail = []
            current = node
            while current not in depths:
                trail.append(current)
                current = self.parent[current]
            base = depths[current]
            for offset, item in enumerate(reversed(trail), start=1):
                depths[item] = base + offset
            return depths[node]

        for node in self.parent:
            depth(node)
        return depths


def elect_leader(
    graph: Graph,
    *,
    latency: Optional[LatencyModel] = None,
    seed: Optional[int] = None,
    registry=None,
) -> ElectionResult:
    """Run the election protocol to quiescence on a connected graph.

    Returns the elected leader (the minimum node id), the spanning-tree
    parent/children pointers, and the run's message statistics.  A
    ``registry`` (:class:`repro.obs.MetricsRegistry`) additionally
    receives per-kind ``sim_messages_total`` counters.
    """
    if graph.num_nodes == 0:
        raise ValueError("cannot elect a leader of an empty graph")
    if not is_connected(graph):
        raise ValueError("leader election requires a connected graph")
    sim = Simulator(graph, ElectionNode, latency=latency, seed=seed, registry=registry)
    stats = sim.run()
    results = sim.collect_results()
    leaders = {res["leader"] for res in results.values()}
    if len(leaders) != 1:
        raise RuntimeError(f"election did not converge: leaders={leaders!r}")
    (leader,) = leaders
    parent = {node: res["parent"] for node, res in results.items()}
    children = {node: res["children"] for node, res in results.items()}
    _validate_tree(graph, leader, parent, children)
    return ElectionResult(leader=leader, parent=parent, children=children, stats=stats)


def _validate_tree(
    graph: Graph,
    leader: Hashable,
    parent: Dict[Hashable, Optional[Hashable]],
    children: Dict[Hashable, FrozenSet[Hashable]],
) -> None:
    """Sanity-check the parent/children pointers form a spanning tree."""
    if parent[leader] is not None:
        raise RuntimeError("leader ended up with a parent")
    for node, par in parent.items():
        if node == leader:
            continue
        if par is None:
            raise RuntimeError(f"non-leader {node!r} has no parent")
        if not graph.has_edge(node, par):
            raise RuntimeError(f"tree edge ({node!r}, {par!r}) not in graph")
        if node not in children[par]:
            raise RuntimeError(f"child pointer missing: {par!r} -> {node!r}")
