"""Reliable delivery over the simulator's lossy radio.

Wraps protocol nodes with per-neighbor ack/retransmit, duplicate
suppression, and heartbeat-based neighbor liveness, so the paper's
algorithms terminate correctly under message loss, crashes, and
partitions (see :mod:`repro.faults`).
"""

from repro.transport.config import TransportConfig
from repro.transport.reliable import (
    ACK_KIND,
    CONTROL_KINDS,
    HEARTBEAT_KIND,
    ReliableTransport,
    TransportContext,
    TransportNode,
    aggregate_transport,
    with_transport,
)

__all__ = [
    "ACK_KIND",
    "CONTROL_KINDS",
    "HEARTBEAT_KIND",
    "ReliableTransport",
    "aggregate_transport",
    "TransportConfig",
    "TransportContext",
    "TransportNode",
    "with_transport",
]
