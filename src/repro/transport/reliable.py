"""Reliable delivery over the lossy radio: ack/retransmit + liveness.

The simulator's radio model delivers a broadcast to every neighbor —
unless loss, a partition, or a crash eats it.  The paper's algorithms
assume ideal delivery, so under faults they deadlock (a predicate waits
forever for a message that was dropped) or diverge.  This module wraps
any :class:`~repro.sim.node.ProtocolNode` in a reliable transport:

* every payload message carries a sequence number; receivers suppress
  duplicates and acknowledge with delayed, batched cumulative ACKs;
* the sender retransmits (unicast, exponential backoff) to each
  neighbor that has not acknowledged, until it either succeeds or
  exhausts its retries and declares the neighbor dead;
* periodic heartbeats double as liveness beacons — a neighbor silent
  past the liveness timeout is *suspected* and removed from the node's
  ``neighbors`` view, and the wrapped protocol's ``on_neighbor_down``
  hook fires so waiting predicates can release it;
* a node that has been idle for a few beats announces ``FIN`` (done
  sending) so its peers stop expecting heartbeats; once all peers are
  FIN-or-suspected the transport goes fully quiet, which is what lets
  the discrete-event simulation reach quiescence.

Termination does not depend on the FIN broadcast surviving loss: a
peer that has been silent past the liveness timeout is *pinged* every
beat for one more timeout window — a live but quiescent transport
answers pings (with its FIN status) even after it stopped ticking, so
the prober learns the truth; only a peer that answers nothing for the
whole window (crashed, or unreachable behind a partition) is suspected.
A spurious suspicion is still possible when every ping exchange in the
window is lost; the protocols tolerate it and the chaos harness
restarts the epoch when it corrupts an invariant.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Hashable, Optional, Set

from repro.graphs.graph import canonical_order
from repro.sim.messages import Message
from repro.sim.node import NodeContext, ProtocolNode
from repro.transport.config import TransportConfig

ACK_KIND = "TRANSPORT-ACK"
HEARTBEAT_KIND = "TRANSPORT-HB"
CONTROL_KINDS = frozenset({ACK_KIND, HEARTBEAT_KIND})
SEQ_KEY = "__seq"

_ACTIVE = "active"
_PASSIVE = "passive"
_STOPPED = "stopped"

_TICK_TAG = "__tx:tick"
_ACK_TAG = "__tx:ack"
_RTX_PREFIX = "__tx:rtx:"


class _Outbound:
    """One in-flight payload awaiting acknowledgements."""

    __slots__ = ("kind", "data", "waiting", "attempts", "delay")

    def __init__(
        self, kind: str, data: Dict[str, Any], waiting: Set[Hashable], delay: float
    ) -> None:
        self.kind = kind
        self.data = data
        self.waiting = waiting
        self.attempts = 0
        self.delay = delay


class ReliableTransport:
    """Per-node reliable-delivery state machine.

    Owned by a :class:`TransportNode`; talks to the radio through the
    raw :class:`~repro.sim.node.NodeContext` and to the wrapped
    protocol through the wrapper's notification callbacks.
    """

    def __init__(self, ctx: NodeContext, config: TransportConfig) -> None:
        self.ctx = ctx
        self.config = config
        self.known: FrozenSet[Hashable] = frozenset(ctx.neighbors)
        self.suspected: Set[Hashable] = set()
        self._fin_peers: Set[Hashable] = set()
        self._last_heard: Dict[Hashable, float] = {}
        #: Silent peers currently being probed -> time of first ping.
        self._pinged: Dict[Hashable, float] = {}
        self._next_seq = 0
        self._pending: Dict[int, _Outbound] = {}
        self._seen: Dict[Hashable, Set[int]] = {}
        self._ack_queue: Dict[Hashable, Set[int]] = {}
        self._ack_timer_set = False
        self._tick_armed = False
        self._state = _ACTIVE
        self._quiet_beats = 0
        self._sent_since_tick = False
        self._traffic_since_tick = False
        self._on_down: Optional[Callable[[Hashable], None]] = None
        self._on_up: Optional[Callable[[Hashable], None]] = None
        # Telemetry (surfaced through TransportNode.result()).
        self.payload_sent = 0
        self.retransmissions = 0
        self.acks_sent = 0
        self.heartbeats_sent = 0
        self.duplicates_dropped = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind(
        self,
        on_down: Callable[[Hashable], None],
        on_up: Callable[[Hashable], None],
    ) -> None:
        self._on_down = on_down
        self._on_up = on_up

    def start(self) -> None:
        for peer in self.known:
            self._last_heard[peer] = 0.0
        self._arm_tick()

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def live_neighbors(self) -> FrozenSet[Hashable]:
        """Neighbors believed alive: known at start, minus suspected."""
        if not self.suspected:
            return self.known
        return self.known - self.suspected

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send_payload(
        self, kind: str, data: Dict[str, Any], dest: Optional[Hashable] = None
    ) -> None:
        if kind in CONTROL_KINDS:
            raise ValueError(f"message kind {kind!r} is reserved by the transport")
        if dest is not None and dest not in self.live_neighbors:
            # The protocol addressed a peer the transport already
            # declared dead; delivering is impossible, waiting is
            # pointless.
            return
        seq = self._next_seq
        self._next_seq += 1
        payload = dict(data)
        payload[SEQ_KEY] = seq
        audience = {dest} if dest is not None else set(self.live_neighbors)
        self.payload_sent += 1
        self._sent_since_tick = True
        self._traffic_since_tick = True
        self._wake()
        if dest is not None:
            self.ctx.send(dest, kind, **payload)
        else:
            self.ctx.broadcast(kind, **payload)
        if audience:
            self._pending[seq] = _Outbound(
                kind, payload, audience, self.config.ack_timeout
            )
            self.ctx.set_timer(self.config.ack_timeout, f"{_RTX_PREFIX}{seq}")

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def handle(self, msg: Message) -> Optional[Message]:
        """Process an incoming message.

        Returns the message when the wrapped protocol should see it,
        ``None`` for transport-internal traffic and duplicates.
        """
        peer = msg.sender
        self._last_heard[peer] = self.ctx.now
        self._pinged.pop(peer, None)
        if peer in self.suspected:
            self.suspected.discard(peer)
            if self._on_up is not None:
                self._on_up(peer)
        if msg.kind == ACK_KIND:
            for seq in msg.data.get("seqs", ()):
                self._resolve(peer, seq)
            return None
        if msg.kind == HEARTBEAT_KIND:
            if msg.data.get("fin"):
                self._fin_peers.add(peer)
            else:
                self._fin_peers.discard(peer)
            if msg.data.get("ping"):
                # Liveness probe: answer with our FIN status.  This
                # works even after the transport stopped ticking — the
                # whole point is distinguishing "quiet but alive" from
                # "dead".
                self.heartbeats_sent += 1
                self.ctx.send(
                    peer, HEARTBEAT_KIND, fin=self._state != _ACTIVE
                )
            return None
        # Payload: a peer that talks is not FIN anymore.
        self._fin_peers.discard(peer)
        seq = msg.data.get(SEQ_KEY)
        if seq is not None:
            self._ack_queue.setdefault(peer, set()).add(seq)
            if not self._ack_timer_set:
                self._ack_timer_set = True
                self.ctx.set_timer(self.config.ack_delay, _ACK_TAG)
            seen = self._seen.setdefault(peer, set())
            if seq in seen:
                self.duplicates_dropped += 1
                return None
            seen.add(seq)
        self._traffic_since_tick = True
        return msg

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def on_timer(self, tag: str) -> None:
        if tag == _TICK_TAG:
            self._on_tick()
        elif tag == _ACK_TAG:
            self._flush_acks()
        elif tag.startswith(_RTX_PREFIX):
            self._on_retransmit_timer(int(tag[len(_RTX_PREFIX):]))

    def _flush_acks(self) -> None:
        self._ack_timer_set = False
        for peer in canonical_order(self._ack_queue):
            seqs = self._ack_queue[peer]
            if peer in self.ctx.neighbors or peer in self.known:
                self.acks_sent += 1
                self.ctx.send(peer, ACK_KIND, seqs=tuple(sorted(seqs)))
        self._ack_queue.clear()

    def _on_retransmit_timer(self, seq: int) -> None:
        out = self._pending.get(seq)
        if out is None:
            return
        out.waiting -= self.suspected
        if not out.waiting:
            del self._pending[seq]
            return
        out.attempts += 1
        if out.attempts > self.config.max_retries:
            del self._pending[seq]
            for peer in canonical_order(out.waiting):
                self._suspect(peer)
            return
        for peer in canonical_order(out.waiting):
            self.retransmissions += 1
            self._sent_since_tick = True
            self.ctx.send(peer, out.kind, **out.data)
        out.delay = min(out.delay * self.config.backoff, self.config.max_backoff)
        self.ctx.set_timer(out.delay, f"{_RTX_PREFIX}{seq}")

    def _on_tick(self) -> None:
        self._tick_armed = False
        if self._state == _STOPPED:
            return
        now = self.ctx.now
        # Liveness sweep: a peer that neither talked nor FIN'd recently
        # is pinged every beat for one more timeout window before being
        # suspected (see the module docstring).
        for peer in canonical_order(
            self.known - self.suspected - self._fin_peers
        ):
            if now - self._last_heard.get(peer, 0.0) > self.config.liveness_timeout:
                pinged_at = self._pinged.get(peer)
                window = (
                    self.config.ping_window_factor * self.config.liveness_timeout
                )
                if pinged_at is not None and now - pinged_at > window:
                    self._suspect(peer)
                    continue
                if pinged_at is None:
                    self._pinged[peer] = now
                self.heartbeats_sent += 1
                self.ctx.send(
                    peer, HEARTBEAT_KIND, fin=self._state != _ACTIVE,
                    ping=True,
                )
        if self._state == _ACTIVE:
            if self._traffic_since_tick or self._pending:
                self._quiet_beats = 0
                if not self._sent_since_tick:
                    # Nothing we sent proved liveness this beat.
                    self.heartbeats_sent += 1
                    self.ctx.broadcast(HEARTBEAT_KIND, fin=False)
            else:
                self._quiet_beats += 1
                if self._quiet_beats >= self.config.idle_beats:
                    # Done sending: announce FIN and fall back to
                    # passive monitoring of the peers still unresolved.
                    self.heartbeats_sent += 1
                    self.ctx.broadcast(HEARTBEAT_KIND, fin=True)
                    self._state = _PASSIVE
                else:
                    self.heartbeats_sent += 1
                    self.ctx.broadcast(HEARTBEAT_KIND, fin=False)
        if self._state == _PASSIVE:
            unresolved = self.known - self.suspected - self._fin_peers
            if not unresolved and not self._pending:
                self._state = _STOPPED
        self._sent_since_tick = False
        self._traffic_since_tick = False
        if self._state != _STOPPED:
            self._arm_tick()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _arm_tick(self) -> None:
        if not self._tick_armed:
            self._tick_armed = True
            self.ctx.set_timer(self.config.heartbeat_interval, _TICK_TAG)

    def _wake(self) -> None:
        """Payload activity pulls the transport back to ACTIVE."""
        if self._state != _ACTIVE:
            self._state = _ACTIVE
            self._quiet_beats = 0
        self._arm_tick()

    def _resolve(self, peer: Hashable, seq: int) -> None:
        out = self._pending.get(seq)
        if out is None:
            return
        out.waiting.discard(peer)
        if not out.waiting:
            del self._pending[seq]

    def _suspect(self, peer: Hashable) -> None:
        if peer in self.suspected:
            return
        self.suspected.add(peer)
        self._pinged.pop(peer, None)
        for seq in list(self._pending):
            out = self._pending[seq]
            out.waiting.discard(peer)
            if not out.waiting:
                del self._pending[seq]
        if self._on_down is not None:
            self._on_down(peer)

    def summary(self) -> Dict[str, Any]:
        return {
            "payload_sent": self.payload_sent,
            "retransmissions": self.retransmissions,
            "acks_sent": self.acks_sent,
            "heartbeats_sent": self.heartbeats_sent,
            "duplicates_dropped": self.duplicates_dropped,
            "suspected": tuple(canonical_order(self.suspected)),
        }


class TransportContext:
    """The :class:`~repro.sim.node.NodeContext` surface, rerouted.

    Wrapped protocols see this instead of the raw context: sends go
    through the reliable transport, and ``neighbors`` is the liveness
    view (known peers minus suspected-dead) rather than the simulator's
    omniscient one.
    """

    def __init__(self, ctx: NodeContext, transport: ReliableTransport) -> None:
        self._ctx = ctx
        self._transport = transport
        self.node_id = ctx.node_id

    @property
    def neighbors(self) -> FrozenSet[Hashable]:
        return self._transport.live_neighbors

    @property
    def now(self) -> float:
        return self._ctx.now

    def broadcast(self, kind: str, **data: Any) -> None:
        self._transport.send_payload(kind, data)

    def send(self, dest: Hashable, kind: str, **data: Any) -> None:
        self._transport.send_payload(kind, data, dest=dest)

    def set_timer(self, delay: float, tag: str = "timer") -> None:
        if tag.startswith("__tx:"):
            raise ValueError("timer tags starting with '__tx:' are reserved")
        self._ctx.set_timer(delay, tag)


class TransportNode(ProtocolNode):
    """Wrapper node: reliable transport below, any protocol above."""

    def __init__(
        self,
        ctx: NodeContext,
        inner_factory: Callable[[Any], ProtocolNode],
        config: TransportConfig,
    ) -> None:
        super().__init__(ctx)
        self.transport = ReliableTransport(ctx, config)
        self.inner = inner_factory(TransportContext(ctx, self.transport))
        self.transport.bind(self.inner.on_neighbor_down, self.inner.on_neighbor_up)

    def on_start(self) -> None:
        self.transport.start()
        self.inner.on_start()

    def on_message(self, msg: Message) -> None:
        delivered = self.transport.handle(msg)
        if delivered is not None:
            self.inner.on_message(delivered)

    def on_timer(self, tag: str) -> None:
        if tag.startswith("__tx:"):
            self.transport.on_timer(tag)
        else:
            self.inner.on_timer(tag)

    def result(self) -> Dict[str, Any]:
        out = dict(self.inner.result())
        out["transport"] = self.transport.summary()
        return out


def aggregate_transport(results: Dict[Hashable, Dict[str, Any]]) -> Dict[str, int]:
    """Sum per-node transport summaries out of ``collect_results()``.

    Returns zeros when the run did not use the transport.
    """
    totals = {
        "payload_sent": 0,
        "retransmissions": 0,
        "acks_sent": 0,
        "heartbeats_sent": 0,
        "duplicates_dropped": 0,
        "suspected_events": 0,
    }
    for res in results.values():
        summary = res.get("transport")
        if not summary:
            continue
        for key in (
            "payload_sent",
            "retransmissions",
            "acks_sent",
            "heartbeats_sent",
            "duplicates_dropped",
        ):
            totals[key] += int(summary.get(key, 0))
        totals["suspected_events"] += len(summary.get("suspected", ()))
    return totals


def with_transport(
    factory: Callable[[Any], ProtocolNode], config: Optional[TransportConfig] = None
) -> Callable[[NodeContext], TransportNode]:
    """Wrap a node factory so every node runs over the transport."""
    cfg = config if config is not None else TransportConfig()

    def wrapped(ctx: NodeContext) -> TransportNode:
        return TransportNode(ctx, factory, cfg)

    return wrapped
