"""Reliable-transport tuning knobs.

The defaults are sized for the simulator's unit-latency radio model:
one hop takes ~1 simulated second, an acknowledgement is delayed up to
``ack_delay`` for batching, so the first retransmission timeout must
cover a round trip plus the ack delay with slack.  Retries back off
exponentially; ``max_retries`` bounds how long a sender keeps trying
before it declares the receiver dead (at 30% loss the probability of
falsely declaring a live neighbor dead after 12 attempts is
``0.3^12 ≈ 5e-7``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TransportConfig:
    """Parameters of the per-neighbor ack/retransmit machinery.

    Attributes:
        ack_timeout: seconds before the first retransmission of an
            unacknowledged message.
        backoff: multiplier applied to the retransmission timeout after
            every attempt (exponential backoff).
        max_backoff: cap on the retransmission timeout.
        max_retries: attempts before the sender gives up and declares
            the unresponsive receiver dead.
        ack_delay: how long a receiver may hold acknowledgements to
            batch several sequence numbers into one ACK message.
        heartbeat_interval: period of the liveness tick; an idle-but-
            alive node beacons at this rate until it announces FIN.
        liveness_timeout: silence (no payload, ack, or heartbeat) after
            which a neighbor enters the ping-probe phase.
        ping_window_factor: how many ``liveness_timeout`` windows of
            unanswered pings (one ping per heartbeat beat) before a
            silent neighbor is finally suspected dead.  Each ping
            round-trip independently survives loss, so widening the
            window drives the false-suspicion probability down
            geometrically: at 30% loss one window (~4 pings) fails
            ~0.51^4 ≈ 7%, two windows ~0.5%.
        idle_beats: consecutive quiet ticks before a node announces FIN
            (it is done sending) and stops beaconing.
    """

    ack_timeout: float = 4.0
    backoff: float = 1.6
    max_backoff: float = 24.0
    max_retries: int = 12
    ack_delay: float = 0.5
    heartbeat_interval: float = 4.0
    liveness_timeout: float = 13.0
    ping_window_factor: float = 2.0
    idle_beats: int = 2

    def __post_init__(self) -> None:
        if self.ack_timeout <= 0:
            raise ValueError("ack_timeout must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_backoff < self.ack_timeout:
            raise ValueError("max_backoff must be >= ack_timeout")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if self.ack_delay < 0:
            raise ValueError("ack_delay must be non-negative")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.liveness_timeout <= self.heartbeat_interval:
            raise ValueError("liveness_timeout must exceed heartbeat_interval")
        if self.ping_window_factor < 1.0:
            raise ValueError("ping_window_factor must be >= 1")
        if self.idle_beats < 1:
            raise ValueError("idle_beats must be >= 1")
