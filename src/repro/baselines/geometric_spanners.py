"""Position-aware geometric spanners: RNG and Gabriel graph.

The paper's introduction contrasts its *position-less* spanners with
the position-based sparse spanners used for routing and broadcasting
(GPSR's Gabriel graph [12], RNG-based broadcasting [15]).  These are
the baselines that quantify what knowing node positions buys:

* **Relative neighborhood graph (RNG)** — keep edge (u, v) unless some
  witness w is closer to both u and v than they are to each other.
* **Gabriel graph (GG)** — keep edge (u, v) unless some witness lies
  strictly inside the disk with diameter uv.

Both are connected subgraphs of a connected UDG with O(n) edges
(RNG ⊆ GG), computable locally from positions.  Neither has a constant
*hop* dilation guarantee — which is exactly the comparison the spanner
benchmark draws against the WCDS spanner.
"""

from __future__ import annotations

from typing import Hashable, Tuple

from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph


def relative_neighborhood_graph(udg: UnitDiskGraph) -> Graph:
    """The RNG restricted to the UDG's edges.

    Edge (u, v) survives iff no common neighbor w has
    ``max(|uw|, |vw|) < |uv|``.  O(m·Δ).
    """
    rng = Graph()
    for node in udg.nodes():
        rng.add_node(node)
    for u, v in udg.edges():
        if not _has_rng_witness(udg, u, v):
            rng.add_edge(u, v)
    return rng


def gabriel_graph(udg: UnitDiskGraph) -> Graph:
    """The Gabriel graph restricted to the UDG's edges.

    Edge (u, v) survives iff no common neighbor lies strictly inside
    the disk whose diameter is uv, i.e. ``|uw|² + |vw|² < |uv|²``.
    """
    gg = Graph()
    for node in udg.nodes():
        gg.add_node(node)
    for u, v in udg.edges():
        if not _has_gabriel_witness(udg, u, v):
            gg.add_edge(u, v)
    return gg


def _has_rng_witness(udg: UnitDiskGraph, u: Hashable, v: Hashable) -> bool:
    duv = udg.euclidean_distance(u, v)
    for w in udg.adjacency(u) & udg.adjacency(v):
        if max(udg.euclidean_distance(u, w), udg.euclidean_distance(v, w)) < duv:
            return True
    return False


def _has_gabriel_witness(udg: UnitDiskGraph, u: Hashable, v: Hashable) -> bool:
    duv_sq = udg.euclidean_distance(u, v) ** 2
    for w in udg.adjacency(u) & udg.adjacency(v):
        duw_sq = udg.euclidean_distance(u, w) ** 2
        dvw_sq = udg.euclidean_distance(v, w) ** 2
        if duw_sq + dvw_sq < duv_sq - 1e-12:
            return True
    return False
