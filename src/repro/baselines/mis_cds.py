"""MIS-based connected dominating set (Alzoubi, Wan, Frieder 2002).

The authors' own earlier line of work (references [2]-[5]): build an
MIS, then connect it into a CDS by adding the intermediate nodes of 2-
and 3-hop paths along a spanning tree of the MIS overlay.  On unit-disk
graphs the result is a constant-ratio CDS; here it is the "strongly
connected" sibling the WCDS algorithms are compared against — same MIS
core, different connection cost.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Set, Tuple

from repro.graphs.graph import Graph, canonical_order
from repro.graphs.traversal import bfs_distances, is_connected, shortest_path
from repro.mis.centralized import greedy_mis
from repro.mis.properties import mis_overlay_graph


def mis_tree_cds(graph: Graph) -> Set[Hashable]:
    """CDS = MIS plus connectors along an MIS-overlay spanning tree.

    The overlay joins MIS nodes within 3 hops (connected by Lemma 3);
    a BFS tree of the overlay is expanded edge by edge, adding the 1 or
    2 intermediate nodes of a shortest path in G for each tree edge.
    """
    if graph.num_nodes == 0:
        raise ValueError("CDS of an empty graph is undefined")
    if not is_connected(graph):
        raise ValueError("MIS-tree CDS requires a connected graph")
    mis = greedy_mis(graph)
    if len(mis) == 1:
        return set(mis)
    overlay = mis_overlay_graph(graph, mis, max_hops=3)
    root = canonical_order(mis)[0]
    parents: Dict[Hashable, Hashable] = {}
    order = bfs_distances(overlay, root)
    if len(order) != len(mis):
        raise AssertionError("MIS overlay is disconnected (violates Lemma 3)")
    cds: Set[Hashable] = set(mis)
    for node in mis:
        if node == root:
            continue
        parent = canonical_order(
            nbr for nbr in overlay.adjacency(node) if order[nbr] == order[node] - 1
        )[0]
        path = shortest_path(graph, node, parent)
        if path is None or len(path) - 1 > 3:
            raise AssertionError("overlay edge without a <=3-hop path")
        cds.update(path[1:-1])  # the 1 or 2 connectors
    if not is_connected(graph.subgraph(cds)):
        raise AssertionError("MIS-tree CDS is not connected")
    return cds
