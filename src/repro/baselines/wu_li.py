"""Wu & Li's marking process for CDS construction (reference [16]).

A localized two-round heuristic: mark every node that has two neighbors
that are not adjacent to each other, then thin the marked set with the
two pruning rules (drop a marked node whose closed neighborhood is
covered by one, or jointly by two, adjacent marked neighbors of higher
priority).  The marked set is a CDS of any connected graph with at
least three nodes — the standard localized baseline the paper compares
its message complexity against.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Set

from repro.graphs.graph import Graph
from repro.graphs.traversal import is_connected


def wu_li_cds(graph: Graph, prune: bool = True) -> Set[Hashable]:
    """The marking process, optionally followed by pruning rules 1 & 2.

    Node ids are the priority (lower id = kept longer), matching the
    original paper's use of ids to break ties.
    """
    if graph.num_nodes == 0:
        raise ValueError("CDS of an empty graph is undefined")
    if not is_connected(graph):
        raise ValueError("Wu-Li marking requires a connected graph")
    if graph.num_nodes <= 2:
        # The marking process marks nothing on K1/K2; any single node
        # dominates and connects.
        return {min(graph.nodes())}
    marked: Set[Hashable] = set()
    for node in graph.nodes():
        nbrs = list(graph.adjacency(node))
        if any(
            not graph.has_edge(u, v) for u, v in itertools.combinations(nbrs, 2)
        ):
            marked.add(node)
    if not marked:
        # Complete graph: nothing is marked; one node suffices.
        return {min(graph.nodes())}
    if prune:
        pruned = _prune(graph, marked)
        # Guard: the sequential-with-current-marks variant of the rules
        # is slightly more conservative than the original simultaneous
        # formulation; keep the unpruned marking if a pathological
        # order ever broke the CDS property.
        if pruned and _is_cds(graph, pruned):
            marked = pruned
    return marked


def _is_cds(graph: Graph, candidate: Set[Hashable]) -> bool:
    dominated = set(candidate)
    for node in candidate:
        dominated.update(graph.adjacency(node))
    if len(dominated) != graph.num_nodes:
        return False
    return is_connected(graph.subgraph(candidate))


def _prune(graph: Graph, marked: Set[Hashable]) -> Set[Hashable]:
    """Pruning rules 1 and 2 (applied with id priority).

    Rule 1: unmark v if some marked neighbor u with higher priority
    (lower id) satisfies N[v] ⊆ N[u].
    Rule 2: unmark v if two adjacent-to-v marked nodes u, w, both of
    higher priority, satisfy N(v) ⊆ N(u) ∪ N(w).
    """
    result = set(marked)
    for v in sorted(marked, key=repr, reverse=True):
        closed_v = graph.closed_neighborhood(v)
        open_v = set(graph.adjacency(v))
        dropped = False
        for u in graph.adjacency(v):
            if u in result and _priority(u) < _priority(v):
                if closed_v <= graph.closed_neighborhood(u):
                    result.discard(v)
                    dropped = True
                    break
        if dropped:
            continue
        candidates = [
            u
            for u in graph.adjacency(v)
            if u in result and _priority(u) < _priority(v)
        ]
        for u, w in itertools.combinations(candidates, 2):
            if not graph.has_edge(u, w):
                continue
            coverage = set(graph.adjacency(u)) | set(graph.adjacency(w))
            if open_v <= coverage:
                result.discard(v)
                break
    return result


def _priority(node: Hashable):
    return repr(node)
