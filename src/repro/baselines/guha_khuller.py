"""Greedy connected dominating set (Guha & Khuller, 1998 style).

The classic grow-a-tree greedy the CDS literature the paper cites
builds on: start from the maximum-degree node, keep a connected black
region, and repeatedly *scan* the gray node (or gray+white pair) that
whitens the most white nodes.  Approximation ratio O(ln Δ).

The CDS serves two comparison purposes: (a) |MWCDS| <= |MCDS|, so any
CDS is an upper-bound competitor for WCDS sizes, and (b) the paper's
claim that relaxing connectivity to weak connectivity buys a smaller
backbone is demonstrated against it.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Set

from repro.graphs.graph import Graph
from repro.graphs.traversal import is_connected

WHITE, GRAY, BLACK = "white", "gray", "black"


def greedy_cds(graph: Graph) -> Set[Hashable]:
    """Guha–Khuller greedy CDS of a connected graph.

    Single-vertex scan version: at each step pick the gray node with
    the most white neighbors; black nodes form the CDS.  Handles the
    degenerate 1- and 2-node graphs explicitly (a CDS needs at least
    one node; the scan loop needs a white node to exist).
    """
    if graph.num_nodes == 0:
        raise ValueError("CDS of an empty graph is undefined")
    if not is_connected(graph):
        raise ValueError("greedy CDS requires a connected graph")
    if graph.num_nodes == 1:
        return set(graph.nodes())
    color: Dict[Hashable, str] = {node: WHITE for node in graph.nodes()}
    start = max(graph.nodes(), key=lambda node: (graph.degree(node), _order(node)))
    cds: Set[Hashable] = set()

    def scan(node: Hashable) -> None:
        cds.add(node)
        color[node] = BLACK
        for nbr in graph.adjacency(node):
            if color[nbr] == WHITE:
                color[nbr] = GRAY

    scan(start)
    while any(c == WHITE for c in color.values()):
        best: Optional[Hashable] = None
        best_gain = -1
        for node in graph.nodes():
            if color[node] != GRAY:
                continue
            gain = sum(1 for nbr in graph.adjacency(node) if color[nbr] == WHITE)
            if gain > best_gain or (gain == best_gain and _order(node) < _order(best)):
                best = node
                best_gain = gain
        if best is None or best_gain <= 0:
            # A gray node with zero white neighbors can still be needed
            # to reach a white region behind it: pick the gray node
            # adjacent to the frontier.  With the single-scan rule this
            # happens on chains; fall back to any gray node with a
            # white node at distance 2.
            best = _frontier_gray(graph, color)
            if best is None:
                raise RuntimeError("greedy CDS stalled with white nodes left")
        scan(best)
    if not is_connected(graph.subgraph(cds)):
        raise AssertionError("greedy CDS produced a disconnected set")
    return cds


def _frontier_gray(graph: Graph, color: Dict[Hashable, str]) -> Optional[Hashable]:
    for node in graph.nodes():
        if color[node] != GRAY:
            continue
        for nbr in graph.adjacency(node):
            if color[nbr] == WHITE:
                return node
            if color[nbr] == GRAY and any(
                color[second] == WHITE for second in graph.adjacency(nbr)
            ):
                return node
    return None


def _order(node: Hashable):
    return repr(node)
