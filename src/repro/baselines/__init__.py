"""Baseline algorithms the paper compares against (or that its claims
imply as comparators): greedy WCDS, greedy CDS, localized marking CDS,
MIS-tree CDS, and exact optima for small instances."""

from repro.baselines.chen_liestman import greedy_wcds
from repro.baselines.guha_khuller import greedy_cds
from repro.baselines.wu_li import wu_li_cds
from repro.baselines.wu_li_distributed import (
    prune_simultaneous,
    wu_li_distributed,
)
from repro.baselines.mis_cds import mis_tree_cds
from repro.baselines.geometric_spanners import (
    gabriel_graph,
    relative_neighborhood_graph,
)
from repro.baselines.exact import (
    certify_wcds_optimality,
    exact_minimum_cds,
    exact_minimum_dominating_set,
    exact_minimum_wcds,
)

__all__ = [
    "greedy_wcds",
    "greedy_cds",
    "wu_li_cds",
    "prune_simultaneous",
    "wu_li_distributed",
    "mis_tree_cds",
    "gabriel_graph",
    "relative_neighborhood_graph",
    "certify_wcds_optimality",
    "exact_minimum_cds",
    "exact_minimum_dominating_set",
    "exact_minimum_wcds",
]
