"""Distributed Wu-Li marking (reference [16]) on the simulator.

The marking process is naturally localized, which makes it the classic
message-complexity comparison point for Algorithm II:

1. every node broadcasts HELLO carrying its neighbor list (so each
   node learns its 2-hop topology);
2. once a node has heard HELLO from every neighbor it decides its mark
   (two neighbors not adjacent to each other) and broadcasts MARKED;
3. once a node knows the marks of all neighbors it applies the
   restricted pruning rules 1 and 2 against the *original* marked set
   with id priority — a purely local computation.

Each node transmits exactly two messages, but the HELLO payload is
O(Δ) ids — versus Algorithm II's O(1)-size payloads — which is the
honest way to compare the two protocols' communication volume.

The simultaneous pruning variant used here checks rules against the
original marks (not marks-after-earlier-prunes), matching what each
node can know locally; :func:`prune_simultaneous` is its centralized
twin, tested equal.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Hashable, Optional, Set, Tuple

from repro.graphs.graph import Graph
from repro.graphs.traversal import is_connected
from repro.sim.config import SimConfig, merge_entry_args
from repro.sim.batched import make_simulator
from repro.sim.messages import Message
from repro.sim.node import NodeContext, ProtocolNode
from repro.sim.stats import SimStats

HELLO = "HELLO"
MARKED = "MARKED"


def prune_simultaneous(graph: Graph, marked: Set[Hashable]) -> Set[Hashable]:
    """Rules 1 and 2 applied simultaneously against the original marks.

    Rule 1: drop v if a marked neighbor u with lower id has
    N[v] ⊆ N[u].  Rule 2: drop v if two adjacent marked neighbors
    u, w, both of lower id, have N(v) ⊆ N(u) ∪ N(w).  Decisions only
    read the original ``marked`` set, so every node can decide locally
    and concurrently.
    """
    result = set(marked)
    for v in marked:
        closed_v = graph.closed_neighborhood(v)
        open_v = set(graph.adjacency(v))
        marked_lower = [
            u for u in graph.adjacency(v) if u in marked and u < v
        ]
        if any(closed_v <= graph.closed_neighborhood(u) for u in marked_lower):
            result.discard(v)
            continue
        for u, w in itertools.combinations(marked_lower, 2):
            if not graph.has_edge(u, w):
                continue
            if open_v <= set(graph.adjacency(u)) | set(graph.adjacency(w)):
                result.discard(v)
                break
    return result


class WuLiNode(ProtocolNode):
    """One node of the distributed marking + pruning protocol."""

    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        self.neighbor_sets: Dict[Hashable, FrozenSet[Hashable]] = {}
        self.neighbor_marks: Dict[Hashable, bool] = {}
        self.marked: Optional[bool] = None
        self.in_cds: Optional[bool] = None

    def on_start(self) -> None:
        self.ctx.broadcast(HELLO, neighbors=tuple(self.ctx.neighbors))
        self._maybe_decide_mark()

    def on_message(self, msg: Message) -> None:
        if msg.kind == HELLO:
            self.neighbor_sets[msg.sender] = frozenset(msg["neighbors"])
            self._maybe_decide_mark()
        elif msg.kind == MARKED:
            self.neighbor_marks[msg.sender] = msg["marked"]
            self._maybe_prune()

    def _maybe_decide_mark(self) -> None:
        if self.marked is not None:
            return
        neighbors = self.ctx.neighbors
        if set(self.neighbor_sets) < set(neighbors):
            return
        self.marked = any(
            v not in self.neighbor_sets[u]
            for u, v in itertools.combinations(sorted(neighbors, key=repr), 2)
        )
        self.ctx.broadcast(MARKED, marked=self.marked)
        self._maybe_prune()

    def _maybe_prune(self) -> None:
        if self.in_cds is not None or self.marked is None:
            return
        neighbors = self.ctx.neighbors
        if set(self.neighbor_marks) < set(neighbors):
            return
        if not self.marked:
            self.in_cds = False
            return
        self.in_cds = self._survives_pruning()

    def _survives_pruning(self) -> bool:
        neighbors = self.ctx.neighbors
        closed_self = set(neighbors) | {self.node_id}
        marked_lower = [
            u for u in neighbors if self.neighbor_marks.get(u) and u < self.node_id
        ]
        for u in marked_lower:
            closed_u = set(self.neighbor_sets[u]) | {u}
            if closed_self <= closed_u:
                return False
        for u, w in itertools.combinations(marked_lower, 2):
            if w not in self.neighbor_sets[u]:
                continue
            coverage = set(self.neighbor_sets[u]) | set(self.neighbor_sets[w])
            if set(neighbors) <= coverage:
                return False
        return True

    def result(self) -> Dict[str, object]:
        return {"marked": self.marked, "in_cds": self.in_cds}


def wu_li_distributed(
    graph: Graph,
    *,
    seed: Optional[int] = None,
    registry=None,
    transport=None,
    sim: Optional[SimConfig] = None,
    **legacy,
) -> Tuple[Set[Hashable], SimStats]:
    """Run the protocol; returns ``(CDS, stats)``.

    Falls back to the unpruned marking (and finally to a single node on
    mark-free graphs like cliques) exactly as the centralized version
    does, so the result is always a CDS of a connected graph.
    """
    config = merge_entry_args(
        sim, seed=seed, transport=transport, legacy=legacy,
        where="wu_li_distributed",
    )
    if graph.num_nodes == 0:
        raise ValueError("CDS of an empty graph is undefined")
    if not is_connected(graph):
        raise ValueError("Wu-Li marking requires a connected graph")
    simulator = make_simulator(graph, WuLiNode, config, registry=registry)
    stats = simulator.run()
    results = simulator.collect_results()
    undecided = [n for n, res in results.items() if res["in_cds"] is None]
    if undecided:
        raise RuntimeError(f"marking did not terminate: {undecided!r}")
    pruned = {n for n, res in results.items() if res["in_cds"]}
    if pruned and _is_cds(graph, pruned):
        return pruned, stats
    marked = {n for n, res in results.items() if res["marked"]}
    if marked and _is_cds(graph, marked):
        return marked, stats
    return {min(graph.nodes())}, stats


def _is_cds(graph: Graph, candidate: Set[Hashable]) -> bool:
    dominated = set(candidate)
    for node in candidate:
        dominated.update(graph.adjacency(node))
    if len(dominated) != graph.num_nodes:
        return False
    return is_connected(graph.subgraph(candidate))
