"""Exact minimum (weakly) connected dominating sets by branch & bound.

It is NP-hard to find a minimum WCDS (Dunbar et al., the paper's
reference [11]), but the benchmark instances used to *measure*
approximation ratios are small: iterative deepening over the target
size k with branching on an undominated vertex (one of its closed
neighborhood must join any dominating set) is exact and fast enough to
n ≈ 18-20 at typical UDG densities.

The same engine yields the minimum CDS (connectivity of the induced
subgraph instead of the weakly induced one) and the minimum plain
dominating set, used by the ratio benchmarks to place every algorithm
against the true optimum and against |MDS| <= |MWCDS| <= |MCDS|.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Hashable, Iterable, Optional, Set

from repro.graphs.graph import Graph, canonical_order
from repro.graphs.traversal import is_connected
from repro.mis.properties import is_dominating_set
from repro.wcds.base import is_weakly_connected_dominating_set, weakly_induced_subgraph


def exact_minimum_dominating_set(graph: Graph, max_size: Optional[int] = None) -> Set[Hashable]:
    """A minimum dominating set (no connectivity requirement)."""
    return _iterative_deepening(graph, _always_feasible, max_size)


def exact_minimum_wcds(graph: Graph, max_size: Optional[int] = None) -> Set[Hashable]:
    """A minimum weakly-connected dominating set of a connected graph."""
    _require_connected(graph)
    return _iterative_deepening(
        graph,
        lambda g, s: is_connected(weakly_induced_subgraph(g, s)),
        max_size,
    )


def exact_minimum_cds(graph: Graph, max_size: Optional[int] = None) -> Set[Hashable]:
    """A minimum connected dominating set of a connected graph."""
    _require_connected(graph)
    return _iterative_deepening(
        graph,
        lambda g, s: is_connected(g.subgraph(s)),
        max_size,
    )


def _require_connected(graph: Graph) -> None:
    if graph.num_nodes == 0:
        raise ValueError("minimum set of an empty graph is undefined")
    if not is_connected(graph):
        raise ValueError("the graph must be connected")


def _always_feasible(graph: Graph, selected: Set[Hashable]) -> bool:
    return True


def _iterative_deepening(
    graph: Graph,
    connectivity_ok: Callable[[Graph, Set[Hashable]], bool],
    max_size: Optional[int],
) -> Set[Hashable]:
    """Smallest S that dominates and satisfies ``connectivity_ok``."""
    if graph.num_nodes == 0:
        return set()
    limit = max_size if max_size is not None else graph.num_nodes
    for k in range(1, limit + 1):
        found = _search(graph, set(), k, connectivity_ok, set())
        if found is not None:
            return found
    raise RuntimeError(f"no feasible set of size <= {limit} exists")


def _search(
    graph: Graph,
    selected: Set[Hashable],
    budget: int,
    connectivity_ok: Callable[[Graph, Set[Hashable]], bool],
    seen: Set[FrozenSet[Hashable]],
) -> Optional[Set[Hashable]]:
    key = frozenset(selected)
    if key in seen:
        return None
    seen.add(key)
    dominated: Set[Hashable] = set(selected)
    for node in selected:
        dominated.update(graph.adjacency(node))
    undominated = [n for n in graph.nodes() if n not in dominated]
    if not undominated:
        if selected and connectivity_ok(graph, selected):
            return set(selected)
        # Dominating but not yet connected enough: spend remaining
        # budget on glue nodes.
        if budget == 0:
            return None
        for candidate in canonical_order(set(graph.nodes()) - selected):
            selected.add(candidate)
            result = _search(graph, selected, budget - 1, connectivity_ok, seen)
            selected.discard(candidate)
            if result is not None:
                return result
        return None
    if budget == 0:
        return None
    # Coverage lower bound: each further pick dominates at most as many
    # undominated nodes as the best remaining candidate actually covers
    # (tighter than the global Delta+1, which ignores both the current
    # selection and which nodes are still white).
    undominated_set = set(undominated)
    per_node = max(
        (
            len(graph.closed_neighborhood(n) & undominated_set)
            for n in graph.nodes()
            if n not in selected
        ),
        default=0,
    )
    if budget * per_node < len(undominated):
        return None
    # Branch on the undominated node with the smallest closed
    # neighborhood: one of those nodes must be selected.
    pivot = min(canonical_order(undominated), key=graph.degree)
    for candidate in canonical_order(graph.closed_neighborhood(pivot)):
        if candidate in selected:
            continue
        selected.add(candidate)
        result = _search(graph, selected, budget - 1, connectivity_ok, seen)
        selected.discard(candidate)
        if result is not None:
            return result
    return None


def certify_wcds_optimality(graph: Graph, size: int) -> bool:
    """True iff no WCDS smaller than ``size`` exists (used by ratio
    tests to certify measured optima).

    Raises ``ValueError`` for ``size < 1`` — a WCDS is nonempty by
    definition, so such a claim is vacuous and certifying it ``True``
    (as this function once silently did) would let a broken caller
    "certify" a nonsense optimum.
    """
    _require_connected(graph)
    if size < 1:
        raise ValueError(
            f"a WCDS has at least one node; size {size} is not certifiable"
        )
    if size == 1:
        return True
    for k in range(1, size):
        if _search(
            graph,
            set(),
            k,
            lambda g, s: is_connected(weakly_induced_subgraph(g, s)),
            set(),
        ) is not None:
            return False
    return True
