"""Greedy WCDS approximation (Chen & Liestman, MobiHoc 2002 — the
paper's reference [8]).

A centralized greedy with an O(ln Δ) approximation guarantee: it grows
a set S, at each step adding the vertex that most improves a potential
combining coverage and connectivity of the weakly induced subgraph.
Following Chen & Liestman's "pieces" formulation, the potential of S is

    f(S) = (#non-dominated nodes) + (#pieces of S)

where the *pieces* are the connected components of the subgraph weakly
induced by S, plus each non-dominated node counted as its own piece —
f decreases to 1 exactly when S is a WCDS.  Each greedy step picks the
vertex with the largest decrease in f.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Set

from repro.graphs.graph import Graph
from repro.graphs.traversal import is_connected
from repro.wcds.base import WCDSResult, weakly_induced_subgraph


def _num_pieces(graph: Graph, selected: Set[Hashable]) -> int:
    """Pieces of the partial solution: components of the weakly induced
    subgraph that contain a selected node, plus one per undominated
    node."""
    if not selected:
        return graph.num_nodes
    dominated: Set[Hashable] = set(selected)
    for node in selected:
        dominated.update(graph.adjacency(node))
    # Components of the weakly induced subgraph restricted to dominated
    # nodes that touch S.
    induced = weakly_induced_subgraph(graph, selected)
    seen: Set[Hashable] = set()
    components = 0
    for node in selected:
        if node in seen:
            continue
        components += 1
        stack = [node]
        seen.add(node)
        while stack:
            current = stack.pop()
            for nbr in induced.adjacency(current):
                if nbr not in seen:
                    seen.add(nbr)
                    stack.append(nbr)
    undominated = graph.num_nodes - len(dominated)
    return components + undominated


def greedy_wcds(graph: Graph) -> WCDSResult:
    """Chen–Liestman greedy WCDS on a connected graph.

    Runs in O(n²·m) worst case (a full potential re-evaluation per
    candidate per step) — fine at benchmark scale, and the point of the
    comparison is set *size*, not construction speed.
    """
    if graph.num_nodes == 0:
        raise ValueError("greedy WCDS requires a non-empty graph")
    if not is_connected(graph):
        raise ValueError("greedy WCDS requires a connected graph")
    if graph.num_nodes == 1:
        # f(empty) is already 1 on K1; the loop below never runs, but a
        # WCDS must be non-empty.
        only = next(iter(graph.nodes()))
        return WCDSResult(
            dominators=frozenset({only}),
            mis_dominators=frozenset({only}),
            meta={"algorithm": "chen-liestman-greedy"},
        )
    selected: Set[Hashable] = set()
    current = _num_pieces(graph, selected)
    while current > 1:
        best_node: Optional[Hashable] = None
        best_value = current
        for candidate in graph.nodes():
            if candidate in selected:
                continue
            value = _num_pieces(graph, selected | {candidate})
            if value < best_value or (
                value == best_value
                and best_node is not None
                and candidate < best_node
            ):
                best_value = value
                best_node = candidate
        if best_node is None or best_value >= current:
            raise RuntimeError("greedy stalled: no improving vertex")
        selected.add(best_node)
        current = best_value
    dominators = frozenset(selected)
    return WCDSResult(
        dominators=dominators,
        mis_dominators=dominators,
        meta={"algorithm": "chen-liestman-greedy"},
    )
