"""Local maintenance of an Algorithm II WCDS under mobility.

Section 4.2 sketches maintenance and defers details to future work; the
key stated properties are: *maintain the MIS at all times*, keep
3-hop-dominator information so the lower-id MIS node of each 3-hop pair
keeps an additional-dominator, and — crucially — "the nodes that get
affected are within three-hop distance" of a topology change.

This module implements a concrete rule with those properties:

* **Independence repair** — when two MIS-dominators become adjacent
  (a gained link), the higher id one is demoted to gray.
* **Coverage repair** — a node left without a dominator neighbor
  promotes itself if it has the lowest id among its uncovered
  neighbors, else waits for a lower-id uncovered neighbor to promote
  (iterated to a fixpoint, exactly the id-greedy rule restricted to the
  uncovered region).
* **Connector repair** — for every MIS-dominator whose 3-hop
  neighborhood changed, its 3-hop MIS pairs are recomputed: stale
  additional-dominators are released and missing ones selected by the
  lower-id endpoint.

The maintainer records, per event batch, which nodes changed role and
their hop distance from the nearest event endpoint, so the locality
claim is measurable (see the maintenance benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.graphs.graph import canonical_order
from repro.graphs.traversal import bfs_distances, is_connected
from repro.graphs.udg import UnitDiskGraph
from repro.mis.properties import is_independent_set, is_dominating_set
from repro.mobility.waypoint import LinkEvents
from repro.wcds.base import WCDSResult, weakly_induced_subgraph
from repro.wcds.algorithm2 import algorithm2_centralized

Pair = Tuple[Hashable, Hashable]


@dataclass
class MaintenanceReport:
    """What one maintenance round did."""

    promoted_mis: Set[Hashable] = field(default_factory=set)
    demoted_mis: Set[Hashable] = field(default_factory=set)
    added_connectors: Set[Hashable] = field(default_factory=set)
    removed_connectors: Set[Hashable] = field(default_factory=set)
    max_distance_to_event: int = 0

    @property
    def touched(self) -> Set[Hashable]:
        """All nodes whose role changed."""
        return (
            self.promoted_mis
            | self.demoted_mis
            | self.added_connectors
            | self.removed_connectors
        )


class MaintainedWCDS:
    """An Algorithm II WCDS kept valid across topology changes."""

    def __init__(self, udg: UnitDiskGraph) -> None:
        self.udg = udg
        initial = algorithm2_centralized(udg)
        self.mis: Set[Hashable] = set(initial.mis_dominators)
        # connector bookkeeping: pair of MIS ids -> chosen intermediate
        self.connectors: Dict[Pair, Hashable] = {
            (u, w): v for u, w, v in initial.meta["pairs_covered"]
        }

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def additional(self) -> Set[Hashable]:
        """Current additional-dominators."""
        return set(self.connectors.values()) - self.mis

    def result(self) -> WCDSResult:
        """Snapshot as a :class:`WCDSResult`."""
        return WCDSResult(
            dominators=frozenset(self.mis | self.additional),
            mis_dominators=frozenset(self.mis),
            additional_dominators=frozenset(self.additional),
            meta={"maintained": True},
        )

    def is_valid(self) -> bool:
        """Whether the current set is a WCDS (connected graphs only;
        on a disconnected snapshot, per-component domination and weak
        connectivity are checked instead)."""
        dominators = self.mis | self.additional
        if not is_dominating_set(self.udg, dominators):
            return False
        if is_connected(self.udg):
            return is_connected(weakly_induced_subgraph(self.udg, dominators))
        # Disconnected graph: every component must be internally fine.
        spanner = weakly_induced_subgraph(self.udg, dominators)
        graph_dist = {
            node: bfs_distances(self.udg, node) for node in self.udg.nodes()
        }
        spanner_dist = {
            node: set(bfs_distances(spanner, node)) for node in spanner.nodes()
        }
        return all(
            set(graph_dist[node]) <= spanner_dist[node] for node in self.udg.nodes()
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def node_off(self, node: Hashable) -> MaintenanceReport:
        """Handle a radio turning off: remove it and repair locally.

        The departed node's former neighbors are the event endpoints;
        its dominator roles (MIS membership, connector duty) are
        released before the standard repair runs.
        """
        if node not in self.udg:
            raise KeyError(f"unknown node {node!r}")
        neighbors = tuple(self.udg.adjacency(node))
        self.udg.remove_node(node)
        was_mis = node in self.mis
        self.mis.discard(node)
        for pair in [
            p for p, via in self.connectors.items() if via == node or node in p
        ]:
            self.connectors.pop(pair)
        if not neighbors:
            report = MaintenanceReport()
            if was_mis:
                report.demoted_mis.add(node)
            return report
        # The lost links all had `node` as one endpoint; the surviving
        # endpoints seed the repair (the departed node itself is
        # filtered out of every graph lookup).
        report = self.apply_events(
            LinkEvents(gained=(), lost=tuple((node, nbr) for nbr in neighbors))
        )
        if was_mis:
            report.demoted_mis.add(node)
        return report

    def node_on(self, node: Hashable, position) -> MaintenanceReport:
        """Handle a radio turning on at ``position``: add it and repair.

        The new node joins gray if it hears a dominator, else the
        coverage repair promotes it; its arrival can also create new
        2-/3-hop dominator pairs, handled by the connector repair.
        """
        neighbors = self.udg.add_node_at(node, position)
        events = LinkEvents(
            gained=tuple((node, nbr) for nbr in neighbors), lost=()
        )
        if events.is_empty:
            # An isolated newcomer must dominate itself.
            self.mis.add(node)
            report = MaintenanceReport()
            report.promoted_mis.add(node)
            return report
        return self.apply_events(events)

    def apply_events(self, events: LinkEvents) -> MaintenanceReport:
        """Repair the WCDS after one batch of link events."""
        report = MaintenanceReport()
        if events.is_empty:
            return report
        self._repair_independence(events, report)
        self._repair_coverage(events, report)
        self._repair_connectors(events, report)
        self._measure_locality(events, report)
        return report

    def _repair_independence(self, events: LinkEvents, report: MaintenanceReport) -> None:
        for u, v in events.gained:
            if u in self.mis and v in self.mis:
                loser = max(u, v)
                self.mis.discard(loser)
                report.demoted_mis.add(loser)

    def _repair_coverage(self, events: LinkEvents, report: MaintenanceReport) -> None:
        """Re-dominate uncovered nodes with the id-greedy rule, seeded
        from the event region and iterated to a fixpoint (demotions can
        uncover nodes farther out, but never beyond the 3-hop ball)."""
        candidates = set(events.endpoints) | report.demoted_mis
        for node in report.demoted_mis:
            candidates.update(self.udg.adjacency(node))
        while True:
            uncovered = sorted(
                node
                for node in candidates
                if node in self.udg
                and node not in self.mis
                and not (self.udg.adjacency(node) & self.mis)
            )
            if not uncovered:
                return
            progressed = False
            for node in uncovered:
                neighbors = self.udg.adjacency(node)
                if neighbors & self.mis:
                    continue  # covered by an earlier promotion this round
                lower_uncovered = [
                    nbr
                    for nbr in neighbors
                    if nbr < node and not (self.udg.adjacency(nbr) & self.mis)
                    and nbr not in self.mis
                ]
                if lower_uncovered:
                    candidates.update(lower_uncovered)
                    continue
                self.mis.add(node)
                report.promoted_mis.add(node)
                progressed = True
            if not progressed:
                # Remaining uncovered nodes all defer to a lower-id
                # uncovered neighbor; promote the global minimum to
                # break the chain (matches the id-greedy order).
                node = min(uncovered)
                self.mis.add(node)
                report.promoted_mis.add(node)

    def _repair_connectors(self, events: LinkEvents, report: MaintenanceReport) -> None:
        """Recompute 3-hop pair coverage for MIS nodes near the events."""
        affected = set(events.endpoints) | report.promoted_mis | report.demoted_mis
        affected_mis: Set[Hashable] = set()
        for node in affected:
            if node not in self.udg:
                continue
            reach = bfs_distances(self.udg, node, cutoff=3)
            affected_mis.update(m for m in reach if m in self.mis)
        before = set(self.connectors.values())
        # Drop connectors whose realized path u-v-x-w broke (the break
        # can be an edge between two nodes that are themselves far from
        # the role holders, so this check is per-entry, not per-event).
        for pair, via in list(self.connectors.items()):
            u, w = pair
            intact = (
                u in self.mis
                and w in self.mis
                and via in self.udg
                and self.udg.has_edge(u, via)
                and bool(self.udg.adjacency(via) & self.udg.adjacency(w))
            )
            if not intact:
                self.connectors.pop(pair)
                affected_mis.update(n for n in pair if n in self.mis)
        # Drop stale pairs involving affected dominators.
        for pair in [p for p in self.connectors if set(p) & (affected_mis | affected)]:
            self.connectors.pop(pair)
        for pair, via in list(self.connectors.items()):
            if via in affected or set(pair) & affected_mis:
                self.connectors.pop(pair, None)
        # Rebuild coverage around the affected dominators — in both
        # directions: an affected dominator may be either endpoint of a
        # 3-hop pair.
        for u in sorted(affected_mis):
            if u not in self.mis:
                continue
            dist = bfs_distances(self.udg, u, cutoff=3)
            for w in sorted(self.mis):
                if w == u or dist.get(w) != 3:
                    continue
                pair = (u, w) if u < w else (w, u)
                if pair in self.connectors:
                    continue
                connector = self._pick_connector(pair[0], pair[1])
                if connector is not None:
                    self.connectors[pair] = connector
        after = set(self.connectors.values())
        report.added_connectors.update(after - before - self.mis)
        report.removed_connectors.update(before - after - self.mis)

    def _pick_connector(self, u: Hashable, w: Hashable) -> Optional[Hashable]:
        dist_w = bfs_distances(self.udg, w, cutoff=2)
        candidates = [
            v for v in self.udg.adjacency(u) if dist_w.get(v) == 2 and v not in self.mis
        ]
        return min(candidates) if candidates else None

    def _measure_locality(self, events: LinkEvents, report: MaintenanceReport) -> None:
        touched = report.touched
        if not touched:
            return
        sources = [node for node in events.endpoints if node in self.udg]
        if not sources:
            return
        # Multi-source BFS from the event endpoints.
        distances: Dict[Hashable, int] = {node: 0 for node in sources}
        frontier = list(sources)
        depth = 0
        while frontier and not touched <= set(distances):
            depth += 1
            next_frontier = []
            for node in frontier:
                for nbr in canonical_order(self.udg.adjacency(node)):
                    if nbr not in distances:
                        distances[nbr] = depth
                        next_frontier.append(nbr)
            frontier = next_frontier
        report.max_distance_to_event = max(
            distances.get(node, depth) for node in touched
        )
