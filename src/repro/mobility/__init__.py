"""Mobility models and local WCDS maintenance (the paper's §4.2
maintenance sketch, implemented)."""

from repro.mobility.waypoint import LinkEvents, RandomWaypointModel
from repro.mobility.models import (
    GaussMarkovModel,
    MobilityModel,
    RandomDirectionModel,
)
from repro.mobility.maintenance import MaintainedWCDS, MaintenanceReport
from repro.mobility.protocol import MaintenanceSimulation, MisMaintenanceNode

__all__ = [
    "LinkEvents",
    "RandomWaypointModel",
    "GaussMarkovModel",
    "MobilityModel",
    "RandomDirectionModel",
    "MaintainedWCDS",
    "MaintenanceReport",
    "MaintenanceSimulation",
    "MisMaintenanceNode",
]
