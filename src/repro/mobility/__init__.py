"""Mobility models and local WCDS maintenance (the paper's §4.2
maintenance sketch, implemented)."""

from repro.mobility.waypoint import LinkEvents, RandomWaypointModel
from repro.mobility.models import (
    GaussMarkovModel,
    MobilityModel,
    RandomDirectionModel,
    density_probe,
)
from repro.mobility.maintenance import MaintainedWCDS, MaintenanceReport
from repro.mobility.protocol import MaintenanceSimulation, MisMaintenanceNode

__all__ = [
    "LinkEvents",
    "RandomWaypointModel",
    "GaussMarkovModel",
    "MobilityModel",
    "RandomDirectionModel",
    "density_probe",
    "MaintainedWCDS",
    "MaintenanceReport",
    "MaintenanceSimulation",
    "MisMaintenanceNode",
]
