"""Additional mobility models: random direction and Gauss-Markov.

Random waypoint (``repro.mobility.waypoint``) is the default, but its
well-known density bias (nodes cluster toward the middle of the area)
makes a second and third model worthwhile for the maintenance
experiments:

* **Random direction** — each node picks a heading and travels until it
  hits the boundary, where it reflects and picks a new heading; node
  density stays uniform.
* **Gauss-Markov** — heading and speed evolve as an AR(1) process, so
  motion is temporally correlated (smooth trajectories), tunable from
  near-Brownian (alpha → 0) to near-constant-velocity (alpha → 1).

All models share the :class:`MobilityModel` protocol: ``step(dt)``
moves every node in the attached UDG and returns the link events.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Hashable, List, Optional, Protocol, Tuple

from repro.geometry.point import Point
from repro.graphs.udg import UnitDiskGraph
from repro.mobility.waypoint import LinkEvents


class MobilityModel(Protocol):
    """Common protocol of all mobility models."""

    def step(self, dt: float = 1.0) -> LinkEvents: ...


def _clamp_reflect(value: float, limit: float) -> Tuple[float, bool]:
    """Reflect ``value`` into ``[0, limit]``; flag if reflected."""
    reflected = False
    while not 0.0 <= value <= limit:
        reflected = True
        if value < 0.0:
            value = -value
        else:
            value = 2.0 * limit - value
    return value, reflected


class RandomDirectionModel:
    """Straight-line travel with boundary reflection."""

    def __init__(
        self,
        udg: UnitDiskGraph,
        side: float,
        speed_range: Tuple[float, float] = (0.05, 0.2),
        seed: Optional[int] = None,
    ) -> None:
        if speed_range[0] <= 0 or speed_range[0] > speed_range[1]:
            raise ValueError("need 0 < min_speed <= max_speed")
        self.udg = udg
        self.side = side
        self._rng = random.Random(seed)
        self._speed: Dict[Hashable, float] = {
            node: self._rng.uniform(*speed_range) for node in udg.nodes()
        }
        self._heading: Dict[Hashable, float] = {
            node: self._rng.uniform(0.0, 2.0 * math.pi) for node in udg.nodes()
        }

    def step(self, dt: float = 1.0) -> LinkEvents:
        """Advance every node along its heading, reflecting at walls."""
        gained: List[Tuple[Hashable, Hashable]] = []
        lost: List[Tuple[Hashable, Hashable]] = []
        for node in list(self.udg.nodes()):
            pos = self.udg.positions[node]
            travel = self._speed[node] * dt
            x = pos.x + travel * math.cos(self._heading[node])
            y = pos.y + travel * math.sin(self._heading[node])
            x, rx = _clamp_reflect(x, self.side)
            y, ry = _clamp_reflect(y, self.side)
            if rx or ry:
                self._heading[node] = self._rng.uniform(0.0, 2.0 * math.pi)
            up, down = self.udg.move_node(node, Point(x, y))
            gained.extend((node, other) for other in up)
            lost.extend((node, other) for other in down)
        return LinkEvents(gained=tuple(gained), lost=tuple(lost))


class GaussMarkovModel:
    """Temporally correlated mobility (Liang & Haas 1999 style).

    speed_t = α·speed_{t-1} + (1-α)·mean + sqrt(1-α²)·noise, and the
    same recurrence for the heading.  ``alpha`` in [0, 1): 0 is
    memoryless, values near 1 give smooth, persistent trajectories.
    """

    def __init__(
        self,
        udg: UnitDiskGraph,
        side: float,
        mean_speed: float = 0.12,
        alpha: float = 0.85,
        speed_sigma: float = 0.04,
        heading_sigma: float = 0.5,
        seed: Optional[int] = None,
    ) -> None:
        if not 0.0 <= alpha < 1.0:
            raise ValueError("alpha must be in [0, 1)")
        if mean_speed <= 0:
            raise ValueError("mean_speed must be positive")
        self.udg = udg
        self.side = side
        self.alpha = alpha
        self.mean_speed = mean_speed
        self.speed_sigma = speed_sigma
        self.heading_sigma = heading_sigma
        self._rng = random.Random(seed)
        self._speed: Dict[Hashable, float] = {
            node: mean_speed for node in udg.nodes()
        }
        self._heading: Dict[Hashable, float] = {
            node: self._rng.uniform(0.0, 2.0 * math.pi) for node in udg.nodes()
        }

    def _evolve(self, node: Hashable) -> None:
        a = self.alpha
        noise_scale = math.sqrt(max(0.0, 1.0 - a * a))
        self._speed[node] = max(
            1e-3,
            a * self._speed[node]
            + (1 - a) * self.mean_speed
            + noise_scale * self._rng.gauss(0.0, self.speed_sigma),
        )
        mean_heading = self._heading[node]
        self._heading[node] = (
            a * self._heading[node]
            + (1 - a) * mean_heading
            + noise_scale * self._rng.gauss(0.0, self.heading_sigma)
        )

    def step(self, dt: float = 1.0) -> LinkEvents:
        """Evolve speed/heading, then advance with wall reflection."""
        gained: List[Tuple[Hashable, Hashable]] = []
        lost: List[Tuple[Hashable, Hashable]] = []
        for node in list(self.udg.nodes()):
            self._evolve(node)
            pos = self.udg.positions[node]
            travel = self._speed[node] * dt
            x = pos.x + travel * math.cos(self._heading[node])
            y = pos.y + travel * math.sin(self._heading[node])
            x, rx = _clamp_reflect(x, self.side)
            y, ry = _clamp_reflect(y, self.side)
            if rx or ry:
                # Turn around on reflection to avoid wall-hugging.
                self._heading[node] += math.pi
            up, down = self.udg.move_node(node, Point(x, y))
            gained.extend((node, other) for other in up)
            lost.extend((node, other) for other in down)
        return LinkEvents(gained=tuple(gained), lost=tuple(lost))


def density_probe(
    udg: UnitDiskGraph,
    side: float,
    resolution: int = 8,
    *,
    radius: float = 1.0,
    method: str = "auto",
) -> List[List[int]]:
    """Node count within ``radius`` of each point of a probe lattice.

    Samples a ``resolution x resolution`` grid of probe centres over the
    deployment square and counts the nodes covering each — the measured
    density map that exposes random waypoint's centre bias (and confirms
    random direction stays uniform).  The batch disk query goes through
    :meth:`UnitDiskGraph.nodes_within_many`, so ``method`` picks the
    pure scan or the vector kernel; the counts are identical.
    """
    if resolution <= 0:
        raise ValueError("resolution must be positive")
    step = side / resolution
    centers = [
        Point((col + 0.5) * step, (row + 0.5) * step)
        for row in range(resolution)
        for col in range(resolution)
    ]
    hits = udg.nodes_within_many(centers, radius, method=method)
    return [
        [len(hits[row * resolution + col]) for col in range(resolution)]
        for row in range(resolution)
    ]
