"""Beacon-based distributed MIS maintenance.

``MaintainedWCDS`` emulates the paper's maintenance sketch centrally;
this module is the distributed counterpart for the MIS core ("the key
technique in our approach is to maintain the MIS in the unit-disk graph
at all time", §4.2), as an actual protocol on the simulator:

* every node broadcasts a periodic BEACON carrying its role
  (dominator / gray) and whether it currently hears a dominator;
* each period a node re-evaluates from its (freshness-pruned) neighbor
  table:
  - **demotion** — a dominator hearing a lower-id dominator neighbor
    steps down (independence repair);
  - **promotion** — an uncovered node promotes itself iff its id is
    lowest among its uncovered neighbors (the id-greedy rule, so two
    adjacent uncovered nodes never both promote).

After topology changes stop, roles converge to a maximal independent
set (a dominating set) within a few beacon periods — the convergence
tests freeze mobility and assert validity after a bounded number of
periods.  Stale entries age out, so the protocol also absorbs silent
node departures without any explicit leave message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from repro.graphs.graph import Graph
from repro.sim.config import SimConfig
from repro.sim.batched import make_simulator
from repro.sim.latency import LatencyModel
from repro.sim.messages import Message
from repro.sim.node import NodeContext, ProtocolNode

BEACON = "BEACON"
BEACON_TIMER = "beacon"

DOMINATOR = "dominator"
GRAY = "gray"


@dataclass
class _NeighborRecord:
    role: str
    covered: bool
    heard_at: float


class MisMaintenanceNode(ProtocolNode):
    """One node of the beacon-based maintenance protocol."""

    def __init__(
        self,
        ctx: NodeContext,
        initial_role: str,
        period: float = 2.0,
        freshness: float = 5.0,
    ) -> None:
        super().__init__(ctx)
        if initial_role not in (DOMINATOR, GRAY):
            raise ValueError(f"unknown role {initial_role!r}")
        self.role = initial_role
        self.period = period
        self.freshness = freshness
        self.neighbors: Dict[Hashable, _NeighborRecord] = {}
        self.covered = initial_role == DOMINATOR

    def on_start(self) -> None:
        self._beacon()
        self.ctx.set_timer(self.period, BEACON_TIMER)

    def on_message(self, msg: Message) -> None:
        if msg.kind != BEACON:
            return
        self.neighbors[msg.sender] = _NeighborRecord(
            role=msg["role"], covered=msg["covered"], heard_at=self.ctx.now
        )

    def on_timer(self, tag: str) -> None:
        if tag != BEACON_TIMER:
            return
        self._prune_stale()
        self._reevaluate()
        self._beacon()
        self.ctx.set_timer(self.period, BEACON_TIMER)

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------
    def _prune_stale(self) -> None:
        horizon = self.ctx.now - self.freshness
        live = self.ctx.neighbors
        self.neighbors = {
            node: record
            for node, record in self.neighbors.items()
            if record.heard_at >= horizon and node in live
        }

    def _fresh_dominators(self):
        return [n for n, rec in self.neighbors.items() if rec.role == DOMINATOR]

    def _reevaluate(self) -> None:
        dominator_neighbors = self._fresh_dominators()
        if self.role == DOMINATOR:
            if any(n < self.node_id for n in dominator_neighbors):
                self.role = GRAY  # independence repair: higher id yields
            self.covered = self.role == DOMINATOR or bool(dominator_neighbors)
            return
        self.covered = bool(dominator_neighbors)
        if self.covered:
            return
        # Uncovered: promote iff lowest id among uncovered neighbors.
        uncovered_lower = [
            n
            for n, rec in self.neighbors.items()
            if not rec.covered and rec.role == GRAY and n < self.node_id
        ]
        if not uncovered_lower:
            self.role = DOMINATOR
            self.covered = True

    def _beacon(self) -> None:
        self.ctx.broadcast(BEACON, role=self.role, covered=self.covered)

    def result(self) -> Dict[str, object]:
        return {"role": self.role, "covered": self.covered}


class MaintenanceSimulation:
    """Driver: a simulator whose topology can change between windows.

    Usage::

        driver = MaintenanceSimulation(udg)         # seeds roles from
        driver.run_for(10.0)                        # the id-greedy MIS
        udg.move_node(3, Point(...))                # or a mobility model
        driver.run_for(10.0)
        assert driver.is_valid_mis()
    """

    def __init__(
        self,
        graph: Graph,
        *,
        period: float = 2.0,
        latency: Optional[LatencyModel] = None,
        seed: Optional[int] = None,
    ) -> None:
        from repro.mis.centralized import greedy_mis

        initial = greedy_mis(graph)
        self.graph = graph
        self.period = period
        self.sim = make_simulator(
            graph,
            lambda ctx: MisMaintenanceNode(
                ctx,
                DOMINATOR if ctx.node_id in initial else GRAY,
                period=period,
            ),
            SimConfig(latency=latency, seed=seed),
        )
        self._started = False

    def run_for(self, duration: float) -> None:
        """Advance the protocol by ``duration`` simulated time."""
        if not self._started:
            self._started = True
            self.sim.run(until=duration)
        else:
            self.sim.run(until=self.sim.now + duration)

    def roles(self) -> Dict[Hashable, str]:
        """Current role of every node."""
        return {
            node: state.role for node, state in self.sim.nodes.items()
        }

    def dominators(self) -> set:
        """Current dominator set."""
        return {n for n, role in self.roles().items() if role == DOMINATOR}

    def is_valid_mis(self) -> bool:
        """Whether current roles form an independent dominating set."""
        from repro.mis.properties import is_maximal_independent_set

        return is_maximal_independent_set(self.graph, self.dominators())

    def settle(self, max_periods: int = 30) -> int:
        """Run until the roles form a valid MIS; returns periods used.

        Raises ``RuntimeError`` if convergence takes longer than
        ``max_periods`` beacon periods — a regression tripwire, since
        the id-priority rules converge in a handful of periods on the
        topologies the tests use.
        """
        for elapsed in range(1, max_periods + 1):
            self.run_for(self.period)
            if self.is_valid_mis():
                return elapsed
        raise RuntimeError(f"no convergence within {max_periods} periods")
