"""Random-waypoint mobility over a unit-disk graph.

The standard ad hoc mobility model: each node picks a uniform waypoint
in the deployment square, moves toward it at its own constant speed,
pauses, and repeats.  Each :meth:`RandomWaypointModel.step` advances
all nodes and reports the link-layer events (edges gained/lost) that
the WCDS maintenance layer reacts to.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.geometry.point import Point
from repro.graphs.udg import UnitDiskGraph


@dataclass(frozen=True)
class LinkEvents:
    """Edges gained and lost during one mobility step."""

    gained: Tuple[Tuple[Hashable, Hashable], ...]
    lost: Tuple[Tuple[Hashable, Hashable], ...]

    @property
    def endpoints(self) -> Set[Hashable]:
        """All nodes incident to some event — the maintenance trigger
        set."""
        nodes: Set[Hashable] = set()
        for u, v in self.gained + self.lost:
            nodes.add(u)
            nodes.add(v)
        return nodes

    @property
    def is_empty(self) -> bool:
        """No topology change this step."""
        return not self.gained and not self.lost


class RandomWaypointModel:
    """Moves the nodes of a :class:`UnitDiskGraph` in place."""

    def __init__(
        self,
        udg: UnitDiskGraph,
        side: float,
        speed_range: Tuple[float, float] = (0.05, 0.2),
        pause_steps: int = 0,
        seed: Optional[int] = None,
    ) -> None:
        if speed_range[0] <= 0 or speed_range[0] > speed_range[1]:
            raise ValueError("need 0 < min_speed <= max_speed")
        self.udg = udg
        self.side = side
        self.pause_steps = pause_steps
        self._rng = random.Random(seed)
        self._speed: Dict[Hashable, float] = {
            node: self._rng.uniform(*speed_range) for node in udg.nodes()
        }
        self._target: Dict[Hashable, Point] = {
            node: self._pick_waypoint() for node in udg.nodes()
        }
        self._pause_left: Dict[Hashable, int] = {node: 0 for node in udg.nodes()}

    def _pick_waypoint(self) -> Point:
        return Point(
            self._rng.uniform(0.0, self.side), self._rng.uniform(0.0, self.side)
        )

    def step(self, dt: float = 1.0) -> LinkEvents:
        """Advance every node by ``dt`` time units; return link events."""
        gained: List[Tuple[Hashable, Hashable]] = []
        lost: List[Tuple[Hashable, Hashable]] = []
        for node in list(self.udg.nodes()):
            if self._pause_left[node] > 0:
                self._pause_left[node] -= 1
                continue
            pos = self.udg.positions[node]
            target = self._target[node]
            remaining = pos.distance_to(target)
            travel = self._speed[node] * dt
            if travel >= remaining:
                new_pos = target
                self._target[node] = self._pick_waypoint()
                self._pause_left[node] = self.pause_steps
            else:
                frac = travel / remaining
                new_pos = Point(
                    pos.x + (target.x - pos.x) * frac,
                    pos.y + (target.y - pos.y) * frac,
                )
            up, down = self.udg.move_node(node, new_pos)
            gained.extend((node, other) for other in up)
            lost.extend((node, other) for other in down)
        return LinkEvents(gained=tuple(gained), lost=tuple(lost))
