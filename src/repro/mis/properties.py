"""Structural properties of maximal independent sets (Section 2.1).

These checks are the measurement side of the paper's Lemmas 1-3 and
Theorem 4: the benchmarks report the measured extrema next to the proven
bounds, and the property tests assert the bounds hold on every sampled
unit-disk graph.
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, Iterable, Set, Tuple

from repro.graphs.graph import Graph, canonical_order
from repro.graphs.traversal import (
    bfs_distances,
    is_connected,
    k_hop_neighborhood,
    nodes_at_exact_distance,
)


def is_independent_set(graph: Graph, nodes: Iterable[Hashable]) -> bool:
    """No two of ``nodes`` are adjacent."""
    members = set(nodes)
    return all(
        not (graph.adjacency(node) & members) for node in members
    )


def is_dominating_set(graph: Graph, nodes: Iterable[Hashable]) -> bool:
    """Every node is in ``nodes`` or adjacent to one of them."""
    members = set(nodes)
    for node in graph.nodes():
        if node in members:
            continue
        if not (graph.adjacency(node) & members):
            return False
    return True


def is_maximal_independent_set(graph: Graph, nodes: Iterable[Hashable]) -> bool:
    """Independent and dominating — maximality is exactly domination."""
    members = set(nodes)
    return is_independent_set(graph, members) and is_dominating_set(graph, members)


def mis_neighbor_counts(graph: Graph, mis: Set[Hashable]) -> Dict[Hashable, int]:
    """For each node *not* in the MIS, its number of MIS neighbors.

    Lemma 1 bounds every value by 5 on unit-disk graphs.
    """
    return {
        node: len(graph.adjacency(node) & mis)
        for node in graph.nodes()
        if node not in mis
    }


def max_mis_neighbors(graph: Graph, mis: Set[Hashable]) -> int:
    """The measured maximum for Lemma 1 (0 if every node is in the MIS)."""
    counts = mis_neighbor_counts(graph, mis)
    return max(counts.values()) if counts else 0


def mis_nodes_at_exactly_two_hops(
    graph: Graph, mis: Set[Hashable], node: Hashable
) -> Set[Hashable]:
    """MIS nodes at hop distance exactly 2 from ``node`` (Lemma 2.1)."""
    return nodes_at_exact_distance(graph, node, 2) & mis


def mis_nodes_within_three_hops(
    graph: Graph, mis: Set[Hashable], node: Hashable
) -> Set[Hashable]:
    """MIS nodes within hop distance 3 of ``node``, excluding it
    (Lemma 2.2)."""
    return k_hop_neighborhood(graph, node, 3) & mis


def lemma2_extrema(graph: Graph, mis: Set[Hashable]) -> Tuple[int, int]:
    """``(max #MIS at exactly 2 hops, max #MIS within 3 hops)`` over all
    MIS nodes — the two quantities Lemma 2 bounds by 23 and 47."""
    max_two = 0
    max_three = 0
    for node in mis:
        distances = bfs_distances(graph, node, cutoff=3)
        two = sum(1 for m in mis if distances.get(m) == 2)
        three = sum(1 for m in mis if m != node and distances.get(m, 4) <= 3)
        max_two = max(max_two, two)
        max_three = max(max_three, three)
    return max_two, max_three


def mis_overlay_graph(graph: Graph, mis: Set[Hashable], max_hops: int) -> Graph:
    """The graph on MIS nodes with edges between pairs ≤ ``max_hops``
    apart in ``graph``.

    Lemma 3 is equivalent to: the overlay with ``max_hops=3`` is
    connected (every complementary bipartition then has a crossing pair
    at distance 2 or 3).  Theorem 4's strengthening is: the overlay with
    ``max_hops=2`` is connected.
    """
    overlay = Graph()
    ordered_mis = canonical_order(mis)
    for node in ordered_mis:
        overlay.add_node(node)
    for node in ordered_mis:
        distances = bfs_distances(graph, node, cutoff=max_hops)
        for other in ordered_mis:
            if other != node and other in distances:
                overlay.add_edge(node, other)
    return overlay


def complementary_subsets_within(graph: Graph, mis: Set[Hashable], max_hops: int) -> bool:
    """Whether *every* pair of complementary MIS subsets is within
    ``max_hops`` hops of each other.

    Checked via overlay connectivity rather than enumerating the 2^|S|
    bipartitions: the minimum over bipartitions of the cross distance is
    > ``max_hops`` iff the overlay is disconnected.
    """
    if len(mis) <= 1:
        return True
    return is_connected(mis_overlay_graph(graph, mis, max_hops))


def min_pairwise_mis_distance(graph: Graph, mis: Set[Hashable]) -> int:
    """Minimum hop distance between distinct MIS nodes (≥ 2 always)."""
    best = None
    for node in mis:
        distances = bfs_distances(graph, node)
        for other in mis:
            if other == node:
                continue
            dist = distances.get(other)
            if dist is not None and (best is None or dist < best):
                best = dist
    if best is None:
        raise ValueError("need at least two MIS nodes in one component")
    return best


def brute_force_subset_distance_check(
    graph: Graph, mis: Set[Hashable], max_hops: int
) -> bool:
    """Enumerate all complementary bipartitions (exponential — tests
    only) and check each is within ``max_hops``.

    Exists to validate the overlay-connectivity shortcut on small
    instances.
    """
    members = sorted(mis, key=repr)
    if len(members) <= 1:
        return True
    all_pairs_dist = {node: bfs_distances(graph, node) for node in members}
    for size in range(1, len(members) // 2 + 1):
        for subset in itertools.combinations(members, size):
            side_a = set(subset)
            side_b = set(members) - side_a
            best = min(
                all_pairs_dist[a].get(b, float("inf"))
                for a in side_a
                for b in side_b
            )
            if best > max_hops:
                return False
    return True
