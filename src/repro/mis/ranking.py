"""Node ranking schemes (Section 2.2 of the paper).

A *rank* is a unique, totally ordered identifier used to break ties when
building a maximal independent set.  The paper distinguishes *static*
ranks, fixed for the whole construction (the node id), from *dynamic*
ranks that evolve as nodes are marked (white-degree then id).  The
level-based rank ``(tree level, id)`` is the one that makes the MIS a
WCDS (Theorems 4 and 5).

A ranking here is simply a dict mapping every node to a sortable key;
uniqueness is enforced because ties would stall the distributed marking.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Tuple

from repro.graphs.graph import Graph

Rank = Tuple


def id_ranking(graph: Graph) -> Dict[Hashable, Rank]:
    """Static ranking by node id alone (Algorithm II's ranking)."""
    return {node: (node,) for node in graph.nodes()}


def level_ranking(graph: Graph, levels: Mapping[Hashable, int]) -> Dict[Hashable, Rank]:
    """Level-based ranking ``(level, id)`` (Algorithm I's ranking).

    ``levels`` maps each node to its depth in a spanning tree rooted at
    the leader; ranks sort lexicographically, so the root is lowest.
    """
    missing = set(graph.nodes()) - set(levels)
    if missing:
        raise ValueError(f"levels missing for nodes: {sorted(map(repr, missing))}")
    return {node: (levels[node], node) for node in graph.nodes()}


def degree_ranking(graph: Graph) -> Dict[Hashable, Rank]:
    """Static ranking by ``(-degree, id)``: high-degree nodes first.

    A static stand-in for the paper's dynamic (degree, ID) example; the
    dynamic variant lives in
    :func:`repro.mis.centralized.greedy_mis_dynamic_degree`.
    """
    return {node: (-graph.degree(node), node) for node in graph.nodes()}


def validate_ranking(graph: Graph, ranking: Mapping[Hashable, Rank]) -> None:
    """Check the ranking covers every node and is injective."""
    missing = set(graph.nodes()) - set(ranking)
    if missing:
        raise ValueError(f"ranking missing nodes: {sorted(map(repr, missing))}")
    if len(set(ranking.values())) != len(ranking):
        raise ValueError("ranking is not injective: ranks must be unique")
