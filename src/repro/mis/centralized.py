"""Centralized MIS constructions (Table 1 of the paper).

The construction is the paper's simple loop: while unmarked (white)
nodes remain, take the white node of lowest rank, mark it black, and
mark its neighbors gray.  With a *static* ranking this is equivalent to
one pass over the nodes in rank order, taking each node that is still
white — which is how :func:`greedy_mis` implements it.

These centralized versions are the reference twins of the distributed
protocols: on the same ranking they must produce the identical set,
which the property tests verify.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Mapping, Set

from repro.graphs.graph import Graph, canonical_order
from repro.mis.ranking import Rank, id_ranking, validate_ranking


def greedy_mis(graph: Graph, ranking: Mapping[Hashable, Rank] = None) -> Set[Hashable]:
    """MIS by lowest-static-rank-first marking.

    With no ranking given, ranks are the node ids (Algorithm II's MIS).
    """
    if ranking is None:
        ranking = id_ranking(graph)
    validate_ranking(graph, ranking)
    black: Set[Hashable] = set()
    gray: Set[Hashable] = set()
    for node in sorted(graph.nodes(), key=ranking.__getitem__):
        if node in gray:
            continue
        black.add(node)
        gray.update(graph.adjacency(node))
    return black


def greedy_mis_dynamic_degree(graph: Graph) -> Set[Hashable]:
    """MIS by dynamic ``(white degree, id)`` ranking.

    The paper's dynamic ranking example: a node's rank is its number of
    *still-white* neighbors, with id breaking ties; the white node with
    the most white neighbors is marked next.  Implemented with a lazy
    heap — stale entries are re-pushed with their refreshed degree.
    """
    white_degree: Dict[Hashable, int] = {
        node: graph.degree(node) for node in graph.nodes()
    }
    state: Dict[Hashable, str] = {node: "white" for node in graph.nodes()}
    heap = [(-deg, node) for node, deg in white_degree.items()]
    heapq.heapify(heap)
    black: Set[Hashable] = set()
    while heap:
        neg_deg, node = heapq.heappop(heap)
        if state[node] != "white":
            continue
        if -neg_deg != white_degree[node]:
            heapq.heappush(heap, (-white_degree[node], node))
            continue
        black.add(node)
        state[node] = "black"
        for nbr in canonical_order(graph.adjacency(node)):
            if state[nbr] == "white":
                state[nbr] = "gray"
                for second in canonical_order(graph.adjacency(nbr)):
                    if state[second] == "white":
                        white_degree[second] -= 1
                        heapq.heappush(heap, (-white_degree[second], second))
    return black


def mis_coloring(graph: Graph, mis: Set[Hashable]) -> Dict[Hashable, str]:
    """The black/gray coloring induced by an MIS."""
    return {
        node: "black" if node in mis else "gray" for node in graph.nodes()
    }
