"""Distributed MIS marking protocol.

This is the color-marking core shared by both of the paper's WCDS
algorithms: all nodes start white; a node marks itself black when it
learns no lower-ranked neighbor will (i.e., it has received a GRAY
declaration from every lower-ranked neighbor, or has none); a white node
hearing a BLACK declaration marks itself gray.  Each node transmits
exactly one declaration, so the phase costs exactly n messages.

The rank of every node and of its neighbors must be known locally
before the phase starts: for Algorithm II the rank is the node id
(known by assumption), for Algorithm I it is ``(level, id)`` learned in
the level calculation phase.  The protocol is parameterized over a rank
table to cover both.

Correctness under asynchrony: a node's decision depends only on its
lower-ranked neighbors' declarations, so by induction on rank order the
outcome is exactly the centralized greedy MIS for that ranking, whatever
the message delays — which the property tests check against
:func:`repro.mis.centralized.greedy_mis` under randomized latency.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Set, Tuple

from repro.graphs.graph import Graph
from repro.mis.centralized import greedy_mis
from repro.mis.ranking import Rank, id_ranking, validate_ranking
from repro.sim.engine import Simulator
from repro.sim.latency import LatencyModel
from repro.sim.messages import Message
from repro.sim.node import NodeContext, ProtocolNode
from repro.sim.stats import SimStats

BLACK = "BLACK"
GRAY = "GRAY"

WHITE_STATE = "white"
GRAY_STATE = "gray"
BLACK_STATE = "black"


class MisNode(ProtocolNode):
    """One node of the distributed marking protocol.

    Subclasses (Algorithm II's full node) override :meth:`declare_black`
    / :meth:`declare_gray` to piggyback extra state, and may use
    different message kind names via the class attributes.
    """

    black_kind = BLACK
    gray_kind = GRAY

    def __init__(self, ctx: NodeContext, ranks: Mapping[Hashable, Rank]) -> None:
        super().__init__(ctx)
        self._ranks = ranks
        self.color = WHITE_STATE
        self.rank = ranks[self.node_id]
        self._pending_lower: Set[Hashable] = {
            nbr for nbr in ctx.neighbors if ranks[nbr] < self.rank
        }

    # ------------------------------------------------------------------
    # Protocol rules
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        if not self._pending_lower:
            self.declare_black()

    def on_message(self, msg: Message) -> None:
        if msg.kind == self.black_kind:
            self._on_black(msg)
        elif msg.kind == self.gray_kind:
            self._on_gray(msg)

    def _on_black(self, msg: Message) -> None:
        if self.color == WHITE_STATE:
            self.declare_gray(msg.sender)

    def _on_gray(self, msg: Message) -> None:
        self._pending_lower.discard(msg.sender)
        if self.color == WHITE_STATE and not self._pending_lower:
            self.declare_black()

    # ------------------------------------------------------------------
    # Declarations (overridable hooks)
    # ------------------------------------------------------------------
    def declare_black(self) -> None:
        """Mark black and announce; called at most once."""
        self.color = BLACK_STATE
        self.ctx.broadcast(self.black_kind)

    def declare_gray(self, dominator: Hashable) -> None:
        """Mark gray (dominated by ``dominator``) and announce."""
        self.color = GRAY_STATE
        self.ctx.broadcast(self.gray_kind)

    def result(self) -> Dict[str, object]:
        return {"color": self.color}


def distributed_mis(
    graph: Graph,
    ranking: Optional[Mapping[Hashable, Rank]] = None,
    *,
    latency: Optional[LatencyModel] = None,
    seed: Optional[int] = None,
    registry=None,
) -> Tuple[Set[Hashable], SimStats]:
    """Run the marking protocol; returns ``(MIS, stats)``.

    Defaults to id ranking (Algorithm II's MIS phase).  The result is
    guaranteed equal to ``greedy_mis(graph, ranking)``.  A ``registry``
    (:class:`repro.obs.MetricsRegistry`) receives per-kind message
    counters.
    """
    if ranking is None:
        ranking = id_ranking(graph)
    validate_ranking(graph, ranking)
    sim = Simulator(
        graph, lambda ctx: MisNode(ctx, ranking), latency=latency, seed=seed,
        registry=registry,
    )
    stats = sim.run()
    results = sim.collect_results()
    undecided = [n for n, res in results.items() if res["color"] == WHITE_STATE]
    if undecided:
        raise RuntimeError(f"marking did not terminate: white={undecided!r}")
    mis = {n for n, res in results.items() if res["color"] == BLACK_STATE}
    return mis, stats
