"""Distributed MIS marking protocol.

This is the color-marking core shared by both of the paper's WCDS
algorithms: all nodes start white; a node marks itself black when it
learns no lower-ranked neighbor will (i.e., it has received a GRAY
declaration from every lower-ranked neighbor, or has none); a white node
hearing a BLACK declaration marks itself gray.  Each node transmits
exactly one declaration, so the phase costs exactly n messages.

The rank of every node and of its neighbors must be known locally
before the phase starts: for Algorithm II the rank is the node id
(known by assumption), for Algorithm I it is ``(level, id)`` learned in
the level calculation phase.  The protocol is parameterized over a rank
table to cover both.

Correctness under asynchrony: a node's decision depends only on its
lower-ranked neighbors' declarations, so by induction on rank order the
outcome is exactly the centralized greedy MIS for that ranking, whatever
the message delays — which the property tests check against
:func:`repro.mis.centralized.greedy_mis` under randomized latency.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Hashable, Mapping, Optional, Set, Tuple

from repro.graphs.graph import Graph
from repro.mis.ranking import Rank, id_ranking, validate_ranking
from repro.sim.config import SimConfig, merge_entry_args
from repro.sim.batched import make_simulator
from repro.sim.messages import Message
from repro.sim.node import NodeContext, ProtocolNode
from repro.sim.stats import SimStats

BLACK = "BLACK"
GRAY = "GRAY"

WHITE_STATE = "white"
GRAY_STATE = "gray"
BLACK_STATE = "black"


class MisNode(ProtocolNode):
    """One node of the distributed marking protocol.

    Subclasses (Algorithm II's full node) override :meth:`declare_black`
    / :meth:`declare_gray` to piggyback extra state, and may use
    different message kind names via the class attributes.
    """

    black_kind = BLACK
    gray_kind = GRAY

    def __init__(self, ctx: NodeContext, ranks: Mapping[Hashable, Rank]) -> None:
        super().__init__(ctx)
        self._ranks = ranks
        self.color = WHITE_STATE
        # Under faults a node can be absent from the rank table (it
        # crashed before the ranking phase finished); such a node never
        # starts, and live nodes skip unranked neighbors.
        self.rank = ranks.get(self.node_id)
        self._pending_lower: Set[Hashable] = (
            set()
            if self.rank is None
            else {
                nbr
                for nbr in ctx.neighbors
                if nbr in ranks and ranks[nbr] < self.rank
            }
        )
        self._black_neighbors: Set[Hashable] = set()

    # ------------------------------------------------------------------
    # Protocol rules
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        if not self._pending_lower:
            self.declare_black()

    def on_message(self, msg: Message) -> None:
        if msg.kind == self.black_kind:
            self._on_black(msg)
        elif msg.kind == self.gray_kind:
            self._on_gray(msg)

    def _on_black(self, msg: Message) -> None:
        self._black_neighbors.add(msg.sender)
        if self.color == WHITE_STATE:
            self.declare_gray(msg.sender)

    def _on_gray(self, msg: Message) -> None:
        self._pending_lower.discard(msg.sender)
        if self.color == WHITE_STATE and not self._pending_lower:
            self.declare_black()

    def on_neighbor_down(self, peer: Hashable) -> None:
        """Transport liveness hook: release predicates waiting on
        ``peer`` and repair domination if a dominator died.

        A gray node whose last known dominator crashed rejoins the
        marking as white; a white node no longer waits for a dead
        lower-ranked neighbor's declaration.  This can produce two
        adjacent black nodes (the MIS property is sacrificed), but the
        set stays dominating — which is what WCDS validity needs.
        """
        self._pending_lower.discard(peer)
        self._black_neighbors.discard(peer)
        if self.color == GRAY_STATE and not self._black_neighbors:
            self.color = WHITE_STATE
        if self.color == WHITE_STATE and not self._pending_lower:
            self.declare_black()

    # ------------------------------------------------------------------
    # Declarations (overridable hooks)
    # ------------------------------------------------------------------
    def declare_black(self) -> None:
        """Mark black and announce; called at most once."""
        self.color = BLACK_STATE
        self.ctx.broadcast(self.black_kind)

    def declare_gray(self, dominator: Hashable) -> None:
        """Mark gray (dominated by ``dominator``) and announce."""
        self.color = GRAY_STATE
        self.ctx.broadcast(self.gray_kind)

    def result(self) -> Dict[str, object]:
        return {"color": self.color}


def run_mis(
    graph: Graph,
    ranking: Optional[Mapping[Hashable, Rank]] = None,
    *,
    seed: Optional[int] = None,
    tracer=None,
    registry=None,
    transport: Any = None,
    sim: Optional[SimConfig] = None,
) -> "Any":
    """Run the marking protocol (unified backbone signature).

    Defaults to id ranking (Algorithm II's MIS phase).  On a fault-free
    run the result equals ``greedy_mis(graph, ranking)``.  The returned
    :class:`~repro.wcds.base.BackboneResult` holds the MIS as both the
    dominator set and the MIS-dominator set (a maximal independent set
    is dominating, though not necessarily weakly connected); ``meta``
    carries the colors and the run's :class:`SimStats`.
    """
    from repro.wcds.base import BackboneResult

    config = merge_entry_args(sim, seed=seed, transport=transport, where="run_mis")
    if ranking is None:
        ranking = id_ranking(graph)
    if not config.faulty:
        validate_ranking(graph, ranking)
    simulator = make_simulator(
        graph, lambda ctx: MisNode(ctx, ranking), config,
        tracer=tracer, registry=registry,
    )
    stats = simulator.run()
    results = simulator.collect_results()
    crashed = simulator.crashed
    survivors = [n for n in graph.nodes() if n not in crashed]
    undecided = [n for n in survivors if results[n]["color"] == WHITE_STATE]
    if undecided:
        raise RuntimeError(f"marking did not terminate: white={undecided!r}")
    mis = frozenset(
        n for n in survivors if results[n]["color"] == BLACK_STATE
    )
    colors = {n: results[n]["color"] for n in results}
    meta: Dict[str, Any] = {"colors": colors, "stats": stats, "crashed": crashed}
    if config.transport_config is not None:
        from repro.transport.reliable import aggregate_transport

        meta["transport_totals"] = aggregate_transport(results)
    return BackboneResult(
        dominators=mis,
        mis_dominators=mis,
        algorithm="mis",
        meta=meta,
    )


def distributed_mis(
    graph: Graph,
    ranking: Optional[Mapping[Hashable, Rank]] = None,
    *,
    latency=None,
    seed: Optional[int] = None,
    registry=None,
) -> Tuple[Set[Hashable], SimStats]:
    """Deprecated shim: old ``(MIS, stats)`` tuple signature.

    Use :func:`run_mis` (or ``repro.backbone.build("mis", ...)``); it
    returns a :class:`~repro.wcds.base.BackboneResult`.
    """
    warnings.warn(
        "distributed_mis() is deprecated; use run_mis() which returns a "
        "BackboneResult (stats are in result.meta['stats'])",
        DeprecationWarning,
        stacklevel=2,
    )
    result = run_mis(
        graph, ranking, seed=seed, registry=registry,
        sim=SimConfig(latency=latency),
    )
    return set(result.dominators), result.meta["stats"]
