"""Maximal independent sets: rankings, constructions, and the paper's
structural properties (Section 2)."""

from repro.mis.ranking import (
    degree_ranking,
    id_ranking,
    level_ranking,
    validate_ranking,
)
from repro.mis.centralized import (
    greedy_mis,
    greedy_mis_dynamic_degree,
    mis_coloring,
)
from repro.mis.distributed import MisNode, distributed_mis, run_mis
from repro.mis.properties import (
    brute_force_subset_distance_check,
    complementary_subsets_within,
    is_dominating_set,
    is_independent_set,
    is_maximal_independent_set,
    lemma2_extrema,
    max_mis_neighbors,
    min_pairwise_mis_distance,
    mis_neighbor_counts,
    mis_nodes_at_exactly_two_hops,
    mis_nodes_within_three_hops,
    mis_overlay_graph,
)

__all__ = [
    "degree_ranking",
    "id_ranking",
    "level_ranking",
    "validate_ranking",
    "greedy_mis",
    "greedy_mis_dynamic_degree",
    "mis_coloring",
    "MisNode",
    "distributed_mis",
    "run_mis",
    "brute_force_subset_distance_check",
    "complementary_subsets_within",
    "is_dominating_set",
    "is_independent_set",
    "is_maximal_independent_set",
    "lemma2_extrema",
    "max_mis_neighbors",
    "min_pairwise_mis_distance",
    "mis_neighbor_counts",
    "mis_nodes_at_exactly_two_hops",
    "mis_nodes_within_three_hops",
    "mis_overlay_graph",
]
